//! Seeding heuristics without approximation guarantees.
//!
//! The paper's introduction contrasts RIS-based algorithms with "heuristics
//! that have unbounded approximation ratio" (IPA, CMD, degree-based rules).
//! This module provides the standard ones as comparison baselines for the
//! seed-quality experiment (`repro quality`):
//!
//! * [`top_degree`] — the `k` highest out-degree users.
//! * [`degree_discount`] — DegreeDiscount (Chen, Wang, Yang; KDD'09): after
//!   a neighbor is seeded, a node's effective degree is discounted by
//!   `2t + (d − t)·t·p` where `t` counts seeded in-neighbors.
//! * [`top_pagerank`] — the `k` highest PageRank users.
//! * [`random_seeds`] — uniform random seeds (the sanity floor).
//! * [`monte_carlo_greedy`] — Kempe et al.'s original greedy with
//!   Monte-Carlo spread estimation and CELF lazy evaluation; `(1−1/e−ε)`
//!   in expectation but orders of magnitude slower than RIS (which is why
//!   IMM exists). Tiny graphs only.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_graph::analysis::influence_pagerank;
use dim_graph::Graph;

use crate::config::SamplerKind;

/// The `k` nodes of highest out-degree (ties toward smaller id).
pub fn top_degree(graph: &Graph, k: usize) -> Vec<u32> {
    let mut nodes: Vec<u32> = graph.nodes().collect();
    nodes.sort_by_key(|&u| (std::cmp::Reverse(graph.out_degree(u)), u));
    nodes.truncate(k);
    nodes
}

/// DegreeDiscount (Chen et al., KDD'09) with discount parameter `p` (the
/// assumed uniform propagation probability; the paper's WC experiments use
/// the average edge probability).
pub fn degree_discount(graph: &Graph, k: usize, p: f64) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dd: Vec<f64> = graph.nodes().map(|u| graph.out_degree(u) as f64).collect();
    let mut t = vec![0u32; n]; // seeded in-neighbors per node
    let mut selected = vec![false; n];
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k.min(n) {
        let Some(best) = (0..n)
            .filter(|&v| !selected[v])
            .max_by(|&a, &b| dd[a].total_cmp(&dd[b]).then(b.cmp(&a)))
        else {
            break;
        };
        selected[best] = true;
        seeds.push(best as u32);
        // Discount the out-neighbors of the new seed.
        for &v in graph.out_neighbors(best as u32) {
            let vi = v as usize;
            if selected[vi] {
                continue;
            }
            t[vi] += 1;
            let d = graph.out_degree(v) as f64;
            let tv = t[vi] as f64;
            dd[vi] = d - 2.0 * tv - (d - tv) * tv * p;
        }
    }
    seeds
}

/// The `k` nodes of highest *influence* PageRank (PageRank on the
/// transposed graph, damping 0.85) — the orientation that rewards
/// reaching others rather than being reached.
pub fn top_pagerank(graph: &Graph, k: usize) -> Vec<u32> {
    let pr = influence_pagerank(graph, 0.85, 100, 1e-10);
    let mut nodes: Vec<u32> = graph.nodes().collect();
    nodes.sort_by(|&a, &b| {
        pr[b as usize]
            .total_cmp(&pr[a as usize])
            .then(a.cmp(&b))
    });
    nodes.truncate(k);
    nodes
}

/// `k` uniformly random distinct nodes.
pub fn random_seeds(graph: &Graph, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut nodes: Vec<u32> = graph.nodes().collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(k);
    nodes
}

/// Kempe et al.'s original greedy: CELF lazy evaluation with Monte-Carlo
/// spread estimates (`sims` cascades per evaluation). Exact same objective
/// as RIS-based methods, estimated the slow way — use on small graphs only.
pub fn monte_carlo_greedy(
    graph: &Graph,
    sampler: SamplerKind,
    k: usize,
    sims: usize,
    seed: u64,
) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let model = sampler.model();
    let estimate = |seeds: &[u32], salt: u64| {
        dim_diffusion::forward::estimate_spread(graph, model, seeds, sims, seed ^ salt)
    };
    let mut seeds: Vec<u32> = Vec::with_capacity(k);
    let mut current = 0.0f64;
    // CELF heap of (stale marginal ×1e6 as u64 for ordering, node).
    let scale = 1e6;
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = graph
        .nodes()
        .map(|v| (u64::MAX, Reverse(v)))
        .collect();
    while seeds.len() < k {
        let Some((stale, Reverse(v))) = heap.pop() else {
            break;
        };
        seeds.push(v);
        let fresh_total = estimate(&seeds, seeds.len() as u64);
        seeds.pop();
        let fresh = ((fresh_total - current).max(0.0) * scale) as u64;
        let next_best = heap.peek().map(|&(c, _)| c).unwrap_or(0);
        // Select when the recomputed marginal still tops the heap and is
        // not a first-touch placeholder, or when nothing else has positive
        // stale value left.
        if (stale != u64::MAX && fresh >= next_best) || next_best == 0 {
            seeds.push(v);
            current = fresh_total;
        } else {
            heap.push((fresh, Reverse(v)));
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::{GraphBuilder, WeightModel};

    fn star() -> Graph {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(1, 2);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn top_degree_picks_hub() {
        let g = star();
        assert_eq!(top_degree(&g, 1), vec![0]);
        assert_eq!(top_degree(&g, 2), vec![0, 1]);
    }

    #[test]
    fn degree_discount_avoids_covered_neighbors() {
        // After seeding the hub, its neighbors are discounted, so the
        // second pick is NOT the hub's best-connected neighbor when an
        // equally good node outside the neighborhood exists.
        let mut b = GraphBuilder::new(8);
        for v in 1..4u32 {
            b.add_edge(0, v); // hub 0 → {1,2,3}
        }
        b.add_edge(1, 2); // node 1 has degree 2 but is hub-adjacent
        for v in 5..8u32 {
            b.add_edge(4, v); // node 4 → {5,6,7}, disjoint
        }
        let g = b.build(WeightModel::WeightedCascade);
        let seeds = degree_discount(&g, 2, 0.1);
        assert_eq!(seeds[0], 0);
        assert_eq!(seeds[1], 4, "disjoint star beats discounted neighbor");
    }

    #[test]
    fn pagerank_seeds_distinct_and_k() {
        let g = barabasi_albert(100, 3, WeightModel::WeightedCascade, 1);
        let seeds = top_pagerank(&g, 10);
        assert_eq!(seeds.len(), 10);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn random_seeds_deterministic_per_seed() {
        let g = star();
        assert_eq!(random_seeds(&g, 3, 7), random_seeds(&g, 3, 7));
        assert_eq!(random_seeds(&g, 100, 7).len(), 6, "capped at n");
    }

    #[test]
    fn mc_greedy_finds_hub() {
        let g = star();
        let seeds = monte_carlo_greedy(
            &g,
            SamplerKind::Standard(DiffusionModel::IndependentCascade),
            1,
            2_000,
            3,
        );
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn mc_greedy_matches_ris_quality_on_small_graph() {
        let g = barabasi_albert(60, 2, WeightModel::WeightedCascade, 5);
        let sampler = SamplerKind::Standard(DiffusionModel::IndependentCascade);
        let mc_seeds = monte_carlo_greedy(&g, sampler, 3, 3_000, 9);
        let cfg = crate::ImConfig {
            k: 3,
            epsilon: 0.3,
            delta: 0.1,
            seed: 9,
            sampler,
        };
        let ris = crate::imm::imm(&g, &cfg);
        let model = DiffusionModel::IndependentCascade;
        let mc_spread =
            dim_diffusion::forward::estimate_spread(&g, model, &mc_seeds, 20_000, 1);
        let ris_spread =
            dim_diffusion::forward::estimate_spread(&g, model, &ris.seeds, 20_000, 1);
        let rel = (mc_spread - ris_spread).abs() / ris_spread;
        assert!(rel < 0.1, "MC greedy {mc_spread} vs RIS {ris_spread}");
    }
}
