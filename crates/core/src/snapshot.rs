//! Sample-once / select-many: DiIMM runs persisted through dim-store.
//!
//! OPIM-C's online/offline split observes that RR sampling dominates end
//! to end cost, while selection is cheap — so a sampled sketch is worth
//! keeping. [`diimm_sample`] runs DiIMM and then has every machine
//! persist its resident shard ([`WorkerOp::PersistShard`], under the
//! [`phase::STORE_SAVE`] label); [`diimm_load_rr`] restores the shards
//! into an in-process cluster and reruns seed selection without any
//! sampling, producing byte-identical seeds and marginals — selection is
//! a deterministic function of the per-machine RR collections, which the
//! snapshot preserves exactly (including machine order).

use std::path::{Path, PathBuf};
use std::time::Instant;

use dim_cluster::ops::{expect_counts, expect_ok, expect_stats};
use dim_cluster::{
    phase, ClusterBackend, ClusterMetrics, ExecMode, FaultInjector, NetworkModel, OpCluster,
    SimCluster, WireError, WorkerOp,
};
use dim_coverage::newgreedi::newgreedi_with;
use dim_coverage::CoverageShard;
use dim_graph::{apply_batch, DeltaBatch, DeltaError, EdgeOp, Graph};
use dim_store::{
    graph_fingerprint, load_snapshot, Snapshot, SnapshotRequest, StoreError,
};

use crate::config::{ImConfig, ImResult, Timings};
use crate::diimm::{diimm_on, DiimmWorker};

/// Failures of the persisted-sketch entry points: the snapshot layer
/// (I/O, corruption, provenance mismatch), the cluster layer, or a
/// streamed edge batch that does not apply to the resident graph.
#[derive(Debug)]
pub enum SnapshotError {
    Store(StoreError),
    Wire(WireError),
    Delta(DeltaError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Store(e) => write!(f, "{e}"),
            SnapshotError::Wire(e) => write!(f, "{e}"),
            SnapshotError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Store(e) => Some(e),
            SnapshotError::Wire(e) => Some(e),
            SnapshotError::Delta(e) => Some(e),
        }
    }
}

impl From<StoreError> for SnapshotError {
    fn from(e: StoreError) -> Self {
        SnapshotError::Store(e)
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

impl From<DeltaError> for SnapshotError {
    fn from(e: DeltaError) -> Self {
        SnapshotError::Delta(e)
    }
}

/// Has every machine of a finished run persist its resident RR shard
/// into `dir` (one file per machine, written by the machine that owns
/// the shard — the shard itself never crosses the wire). Works on any
/// [`OpCluster`] whose workers answer [`WorkerOp::PersistShard`]; wall
/// time accrues under [`phase::STORE_SAVE`].
pub fn persist_rr_shards<B: OpCluster>(
    cluster: &mut B,
    dir: &Path,
    graph: &Graph,
    config: &ImConfig,
    theta: u64,
) -> Result<(), WireError> {
    let fingerprint = graph_fingerprint(graph);
    let dir = dir.display().to_string();
    let shard_count = cluster.num_machines() as u32;
    let spec = config.sampler.into();
    let replies = cluster.control(phase::STORE_SAVE, |i| WorkerOp::PersistShard {
        dir: dir.clone(),
        fingerprint,
        seed: config.seed,
        theta,
        shard_id: i as u32,
        shard_count,
        spec,
    })?;
    expect_ok(&replies, phase::STORE_SAVE)
}

/// Runs DiIMM on `machines` simulated machines, then persists every
/// machine's RR shard into `dir` — the `dim sample` entry point. The
/// returned result is the full DiIMM outcome; its timeline additionally
/// carries the [`phase::STORE_SAVE`] cost.
pub fn diimm_sample(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
    dir: &Path,
) -> Result<ImResult, SnapshotError> {
    assert!(machines >= 1, "need at least one machine");
    let workers: Vec<DiimmWorker> = (0..machines)
        .map(|i| DiimmWorker::new(graph, config, i))
        .collect();
    let mut cluster = SimCluster::new(workers, network, mode);
    let mut result = diimm_on(&mut cluster, graph, config, true)?;
    persist_rr_shards(&mut cluster, dir, graph, config, result.num_rr_sets as u64)?;
    // Re-derive the result's metric views so they include the save phase.
    let timeline = cluster.timeline().clone();
    result.timings = Timings::from_timeline(&timeline);
    result.metrics = timeline.total();
    result.timeline = timeline;
    Ok(result)
}

/// The provenance a snapshot must match to serve `graph` under `config`:
/// graph fingerprint and sampler kind, any shard count. This is what
/// `dim serve` hands to the hot-reload path, so reloads validate exactly
/// like the initial load.
pub fn rr_snapshot_request(graph: &Graph, config: &ImConfig) -> SnapshotRequest {
    SnapshotRequest {
        fingerprint: graph_fingerprint(graph),
        sampler: config.sampler.into(),
        shard_count: None,
    }
}

/// Loads and validates the snapshot in `dir` against `graph` and
/// `config` (graph fingerprint and sampler kind must match; any shard
/// count is accepted). A thin wrapper for callers that want the raw
/// [`Snapshot`] — `dim serve` loads through this.
pub fn load_rr_snapshot(
    graph: &Graph,
    config: &ImConfig,
    dir: &Path,
) -> Result<Snapshot, StoreError> {
    load_snapshot(dir, &rr_snapshot_request(graph, config))
}

/// Loads the newest committed generation under `root` that validates
/// against `graph`/`config`, returning its id with the snapshot. A root
/// with no generation directories falls back to the flat layout as
/// generation 0, so pre-generation stores keep loading.
pub fn load_latest_rr_snapshot(
    graph: &Graph,
    config: &ImConfig,
    root: &Path,
) -> Result<(u64, Snapshot), StoreError> {
    dim_store::load_latest_snapshot(root, &rr_snapshot_request(graph, config))
}

/// Runs DiIMM and persists the shards as a *new committed generation*
/// under `root` — the `dim sample --generations` entry point, and the
/// producer half of zero-downtime reload: shards land in a fresh
/// `gen-N/` directory that only becomes visible to loaders once its
/// manifest commits, so a concurrently serving `dim serve` never
/// observes a half-written snapshot. After the commit, old generations
/// beyond the newest `keep` are garbage-collected. Returns the new
/// generation id with the run result.
pub fn diimm_sample_generation(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
    root: &Path,
    keep: usize,
) -> Result<(u64, ImResult), SnapshotError> {
    let (id, dir) = dim_store::begin_generation(root)?;
    let result = diimm_sample(graph, config, machines, network, mode, &dir)?;
    dim_store::commit_generation(&dir, id)?;
    dim_store::gc_generations(root, keep)?;
    Ok((id, result))
}

/// What one streamed batch did to the session: the generation it
/// committed (if persisted), and the repair volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamApplied {
    /// Generation id the delta committed as, `None` for an in-memory
    /// apply (`persist = false`).
    pub generation: Option<u64>,
    /// Edge operations in the applied batch.
    pub ops: usize,
    /// RR sets invalidated and re-sampled, summed across machines.
    pub sets_repaired: u64,
}

/// A resident edge-stream session: the restored cluster plus the chain
/// bookkeeping needed to extend it — the `dim stream` entry point.
///
/// Opening a session restores the newest committed chain under `root`
/// (base shards + any stacked delta generations, folded by the store)
/// into per-machine [`DiimmWorker`]s, and replays the chain's batches
/// over the base graph so the resident graph matches the resident
/// shards. Each [`apply`](Self::apply) then broadcasts one batch to
/// every machine ([`WorkerOp::ApplyDelta`], under
/// [`phase::STREAM_APPLY`]): workers repair exactly the RR sets whose
/// traversal touched a mutated in-list — on their original per-set RNG
/// streams, so the repaired state is byte-identical to a full re-sample
/// of the mutated graph — and, when persisting, each writes its own
/// delta shard into a fresh generation that commits atomically.
///
/// The store is single-writer: run one streaming session per root at a
/// time. Mixing in-memory applies (`persist = false`) with persisted
/// ones breaks the on-disk chain (a missing link fails fingerprint
/// validation at the next load), so a persistent session should persist
/// every batch.
pub struct StreamSession<'g> {
    cluster: SimCluster<DiimmWorker<'g>>,
    config: ImConfig,
    root: PathBuf,
    request: SnapshotRequest,
    theta: u64,
    generation: u64,
    base_generation: u64,
    tip_fingerprint: u64,
    next_seq: u64,
    current: Graph,
}

impl<'g> StreamSession<'g> {
    /// Restores the newest committed chain under `root` (validated
    /// against `base`/`config`) into a resident cluster. `base` is the
    /// graph the *base snapshot* was sampled from; if the chain carries
    /// batches (or a compacted base), the session's resident graph is
    /// the replayed tip, not `base`.
    pub fn open(
        base: &'g Graph,
        config: &ImConfig,
        root: &Path,
        network: NetworkModel,
        mode: ExecMode,
    ) -> Result<Self, SnapshotError> {
        let request = rr_snapshot_request(base, config);
        let (generation, snapshot, chain) = dim_store::load_latest_chain(root, &request)?;
        // Graph lineage: a compacted base persists its mutated graph
        // next to its shards; an uncompacted one was sampled from the
        // boot graph itself.
        let mut current = match dim_store::read_graph_file(&chain.base_dir)? {
            Some(g) => g,
            None => base.clone(),
        };
        let mutated = chain.next_seq > 0 || graph_fingerprint(&current) != request.fingerprint;
        for batch in &chain.batches {
            current = apply_batch(&current, batch)?;
        }
        if graph_fingerprint(&current) != chain.tip_fingerprint {
            return Err(SnapshotError::Store(StoreError::Mismatch {
                path: chain.base_dir.clone(),
                field: "tip fingerprint",
                expected: chain.tip_fingerprint,
                found: graph_fingerprint(&current),
            }));
        }
        let theta = snapshot.theta;
        let n = snapshot.num_sets as usize;
        let workers: Vec<DiimmWorker<'g>> = snapshot
            .shards
            .into_iter()
            .map(|s| {
                let machine_id = s.header.shard_id as usize;
                let edges = s.header.edges_examined;
                let shard = CoverageShard::from_pooled(n, s.elements, s.index);
                DiimmWorker::restore(
                    base,
                    mutated.then(|| current.clone()),
                    config,
                    machine_id,
                    shard,
                    edges,
                )
            })
            .collect();
        Ok(StreamSession {
            cluster: SimCluster::new(workers, network, mode),
            config: *config,
            root: root.to_path_buf(),
            request,
            theta,
            generation,
            base_generation: chain.base_generation,
            tip_fingerprint: chain.tip_fingerprint,
            next_seq: chain.next_seq,
            current,
        })
    }

    /// Arms (or disarms) a fault injector on the resident cluster, so
    /// subsequent applies and compactions run their repair broadcasts
    /// under an injected stall/loss schedule — the chaos-test seam for
    /// the streaming path. Repairs are deterministic functions of the
    /// per-set RNG streams, so a schedule the link layer absorbs (stalls,
    /// lossy sends within retry budgets) must not change a committed
    /// byte.
    pub fn set_faults(&mut self, injector: Option<FaultInjector>) {
        self.cluster.set_faults(injector);
    }

    /// The armed injector, if any — inspect its event log to prove a
    /// chaos schedule actually fired.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.cluster.fault_injector()
    }

    /// Newest committed generation id under the root.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number the next applied batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The resident (tip) graph — base graph plus every applied batch.
    pub fn current_graph(&self) -> &Graph {
        &self.current
    }

    /// Number of machines holding shards.
    pub fn num_machines(&self) -> usize {
        self.cluster.num_machines()
    }

    /// Applies one batch of edge operations to every machine, repairing
    /// the resident RR shards incrementally. With `persist`, each worker
    /// writes its delta shard into a fresh generation which is committed
    /// atomically once all machines succeed; generations beyond the
    /// newest `keep` are then garbage-collected (chain bases are always
    /// retained).
    pub fn apply(
        &mut self,
        ops: Vec<EdgeOp>,
        persist: bool,
        keep: usize,
    ) -> Result<StreamApplied, SnapshotError> {
        let batch = DeltaBatch {
            seq: self.next_seq,
            ops,
        };
        batch.validate(self.current.num_nodes())?;
        let mutated = apply_batch(&self.current, &batch)?;
        let fingerprint = graph_fingerprint(&mutated);
        let staged = if persist {
            Some(dim_store::begin_generation(&self.root)?)
        } else {
            None
        };
        let persist_dir = staged.as_ref().map(|(_, dir)| dir.display().to_string());
        let encoded = batch.encode();
        let shard_count = self.cluster.num_machines() as u32;
        let spec = self.config.sampler.into();
        let replies = self.cluster.control(phase::STREAM_APPLY, |_| WorkerOp::ApplyDelta {
            batch: encoded.clone(),
            persist_dir: persist_dir.clone(),
            base_generation: self.base_generation,
            fingerprint,
            parent_fingerprint: self.tip_fingerprint,
            seed: self.config.seed,
            theta: self.theta,
            shard_count,
            spec,
        })?;
        let counts = expect_counts(&replies, phase::STREAM_APPLY)?;
        let generation = match staged {
            Some((id, dir)) => {
                dim_store::commit_generation(&dir, id)?;
                dim_store::gc_generations(&self.root, keep)?;
                self.generation = id;
                Some(id)
            }
            None => None,
        };
        let ops = batch.ops.len();
        self.current = mutated;
        self.tip_fingerprint = fingerprint;
        self.next_seq += 1;
        Ok(StreamApplied {
            generation,
            ops,
            sets_repaired: counts.iter().sum(),
        })
    }

    /// Folds the resident chain into a fresh standalone base generation
    /// (shards carry the chain's root fingerprint; the tip graph rides
    /// along as [`dim_store::GRAPH_FILE`]), then GCs down to `keep`.
    /// Returns the new base's id, or `None` when there is nothing to
    /// fold (no batches applied since the last base). Subsequent applies
    /// chain from the new base at sequence 0.
    pub fn compact(&mut self, keep: usize) -> Result<Option<u64>, SnapshotError> {
        match dim_store::compact_generation(&self.root, &self.request, &self.current)? {
            Some((id, _dir)) => {
                dim_store::gc_generations(&self.root, keep)?;
                self.generation = id;
                self.base_generation = id;
                self.next_seq = 0;
                Ok(Some(id))
            }
            None => Ok(None),
        }
    }

    /// Reruns seed selection over the resident (repaired) shards —
    /// byte-identical to a full re-sample + select on the tip graph.
    pub fn select(&mut self) -> Result<ImResult, SnapshotError> {
        let n = self.current.num_nodes();
        let sel = newgreedi_with(&mut self.cluster, n, self.config.k)?;
        let replies = self.cluster.control(phase::SETUP, |_| WorkerOp::Stats)?;
        let stats = expect_stats(&replies, phase::SETUP)?;
        let total_rr_size: usize = stats.iter().map(|s| s.total_size as usize).sum();
        let edges_examined: u64 = stats.iter().map(|s| s.edges_examined).sum();
        let theta = self.theta as usize;
        let est_spread = n as f64 * sel.covered as f64 / theta as f64;
        let timeline = self.cluster.timeline().clone();
        Ok(ImResult {
            seeds: sel.seeds,
            marginals: sel.marginals,
            coverage: sel.covered,
            num_rr_sets: theta,
            total_rr_size,
            edges_examined,
            est_spread,
            lower_bound: 0.0,
            rounds: 0,
            timings: Timings::from_timeline(&timeline),
            metrics: timeline.total(),
            timeline,
        })
    }
}

/// Restores a validated snapshot into per-machine coverage shards, in
/// shard order. The shards come out prepared (the persisted transpose
/// index is reused, not recomputed).
pub fn snapshot_shards(snapshot: Snapshot) -> Vec<CoverageShard> {
    let num_sets = snapshot.num_sets as usize;
    snapshot
        .shards
        .into_iter()
        .map(|s| CoverageShard::from_pooled(num_sets, s.elements, s.index))
        .collect()
}

/// The `dim im --load-rr` entry point: loads the snapshot in `dir`
/// (validated against `graph`/`config`), rebuilds the per-machine
/// coverage shards, and reruns seed selection only. Seeds and marginals
/// are byte-identical to the run that wrote the snapshot; load wall time
/// is recorded under [`phase::STORE_LOAD`]. Sampling-phase statistics
/// (`total_rr_size`, `edges_examined`) are restored from the snapshot
/// headers; `rounds` and `lower_bound` are not persisted and read 0.
pub fn diimm_load_rr(
    graph: &Graph,
    config: &ImConfig,
    dir: &Path,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<ImResult, SnapshotError> {
    let n = graph.num_nodes();
    let start = Instant::now();
    let snapshot = load_rr_snapshot(graph, config, dir)?;
    let theta = snapshot.theta as usize;
    let total_rr_size = snapshot.total_size() as usize;
    let edges_examined = snapshot.edges_examined;
    let shards = snapshot_shards(snapshot);
    let load_time = start.elapsed();
    let mut cluster = SimCluster::new(shards, network, mode);
    cluster.record(
        phase::STORE_LOAD,
        ClusterMetrics {
            master_compute: load_time,
            phases: 1,
            ..Default::default()
        },
    );
    let sel = newgreedi_with(&mut cluster, n, config.k)?;
    let est_spread = n as f64 * sel.covered as f64 / theta as f64;
    let timeline = cluster.timeline().clone();
    Ok(ImResult {
        seeds: sel.seeds,
        marginals: sel.marginals,
        coverage: sel.covered,
        num_rr_sets: theta,
        total_rr_size,
        edges_examined,
        est_spread,
        lower_bound: 0.0,
        rounds: 0,
        timings: Timings::from_timeline(&timeline),
        metrics: timeline.total(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::erdos_renyi;
    use dim_graph::WeightModel;

    use crate::config::SamplerKind;
    use crate::diimm::diimm;

    fn config(k: usize, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon: 0.5,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dim-core-snapshot-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sample_then_load_is_byte_identical() {
        let g = erdos_renyi(200, 1000, WeightModel::WeightedCascade, 2);
        let cfg = config(4, 17);
        let dir = temp_dir("roundtrip");
        let net = NetworkModel::cluster_1gbps();
        let sampled =
            diimm_sample(&g, &cfg, 3, net, ExecMode::Sequential, &dir).unwrap();
        let direct = diimm(&g, &cfg, 3, net, ExecMode::Sequential).unwrap();
        assert_eq!(sampled.seeds, direct.seeds);
        assert_eq!(sampled.marginals, direct.marginals);
        // Save-phase accounting is present and traffic-free.
        let save = sampled.timeline.get(phase::STORE_SAVE);
        assert_eq!(save.bytes_to_master + save.bytes_from_master, 0);
        let loaded = diimm_load_rr(&g, &cfg, &dir, net, ExecMode::Sequential).unwrap();
        assert_eq!(loaded.seeds, direct.seeds);
        assert_eq!(loaded.marginals, direct.marginals);
        assert_eq!(loaded.coverage, direct.coverage);
        assert_eq!(loaded.num_rr_sets, direct.num_rr_sets);
        assert_eq!(loaded.total_rr_size, direct.total_rr_size);
        assert_eq!(loaded.edges_examined, direct.edges_examined);
        assert!(loaded.timeline.get(phase::STORE_LOAD).master_compute
            > std::time::Duration::ZERO);
        // No sampling happened on the load path.
        assert_eq!(
            loaded.timeline.get(phase::RR_SAMPLING),
            ClusterMetrics::default()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_wrong_graph_and_wrong_sampler() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 3);
        let cfg = config(3, 5);
        let dir = temp_dir("mismatch");
        let net = NetworkModel::zero();
        diimm_sample(&g, &cfg, 2, net, ExecMode::Sequential, &dir).unwrap();
        // Different graph: fingerprint mismatch, typed — not a panic.
        let other = erdos_renyi(150, 700, WeightModel::WeightedCascade, 4);
        match diimm_load_rr(&other, &cfg, &dir, net, ExecMode::Sequential) {
            Err(SnapshotError::Store(StoreError::Mismatch { field, .. })) => {
                assert_eq!(field, "fingerprint")
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        // Different sampler kind.
        let mut cfg2 = cfg;
        cfg2.sampler = SamplerKind::Subsim;
        match diimm_load_rr(&g, &cfg2, &dir, net, ExecMode::Sequential) {
            Err(SnapshotError::Store(StoreError::Mismatch { field, .. })) => {
                assert_eq!(field, "sampler")
            }
            other => panic!("expected sampler mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_surfaces_truncated_file_as_typed_error() {
        let g = erdos_renyi(120, 500, WeightModel::WeightedCascade, 9);
        let cfg = config(3, 8);
        let dir = temp_dir("truncated");
        diimm_sample(&g, &cfg, 2, NetworkModel::zero(), ExecMode::Sequential, &dir).unwrap();
        let victim = dir.join(dim_store::shard_file_name(1, 2));
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        match diimm_load_rr(&g, &cfg, &dir, NetworkModel::zero(), ExecMode::Sequential) {
            Err(SnapshotError::Store(StoreError::Corrupt { .. })) => {}
            other => panic!("expected corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_sample_commits_loads_latest_and_gcs() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 11);
        let root = temp_dir("generations");
        // Two runs with different seeds: two committed generations.
        let cfg1 = config(3, 21);
        let (id1, r1) =
            diimm_sample_generation(&g, &cfg1, 2, NetworkModel::zero(), ExecMode::Sequential, &root, 4)
                .unwrap();
        assert_eq!(id1, 1);
        let cfg2 = config(3, 22);
        let (id2, r2) =
            diimm_sample_generation(&g, &cfg2, 2, NetworkModel::zero(), ExecMode::Sequential, &root, 4)
                .unwrap();
        assert_eq!(id2, 2);
        // The latest load sees generation 2 and reproduces its run
        // byte-identically (selection is deterministic in the shards).
        let (id, snapshot) = load_latest_rr_snapshot(&g, &cfg2, &root).unwrap();
        assert_eq!(id, id2);
        assert_eq!(snapshot.seed, 22);
        assert_eq!(snapshot.theta as usize, r2.num_rr_sets);
        // Generation 1 is still on disk (keep = 4) and loads directly.
        let dir1 = root.join(dim_store::generation_dir_name(id1));
        let old = load_rr_snapshot(&g, &cfg1, &dir1).unwrap();
        assert_eq!(old.theta as usize, r1.num_rr_sets);
        // keep = 1 GCs everything but the newest.
        let (id3, _) =
            diimm_sample_generation(&g, &cfg2, 2, NetworkModel::zero(), ExecMode::Sequential, &root, 1)
                .unwrap();
        assert_eq!(id3, 3);
        let left: Vec<u64> = dim_store::list_generations(&root)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(left, vec![3]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn flat_store_loads_as_generation_zero() {
        let g = erdos_renyi(120, 500, WeightModel::WeightedCascade, 13);
        let cfg = config(3, 9);
        let dir = temp_dir("flat");
        diimm_sample(&g, &cfg, 2, NetworkModel::zero(), ExecMode::Sequential, &dir).unwrap();
        let (id, snapshot) = load_latest_rr_snapshot(&g, &cfg, &dir).unwrap();
        assert_eq!(id, 0);
        assert_eq!(snapshot.seed, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_apply_persists_chain_reloads_and_compacts() {
        let g = erdos_renyi(200, 1000, WeightModel::WeightedCascade, 7);
        let cfg = config(4, 33);
        let root = temp_dir("stream");
        let net = NetworkModel::zero();
        let (base_id, _) =
            diimm_sample_generation(&g, &cfg, 3, net, ExecMode::Sequential, &root, 4).unwrap();
        assert_eq!(base_id, 1);

        // Apply one persisted batch: delete a real edge, add a fresh one.
        let (u, v, _) = g.edges().next().unwrap();
        let batch = vec![
            EdgeOp::Delete { u, v },
            EdgeOp::Insert {
                u: (u + 1) % 200,
                v: (u + 3) % 200,
                p: 0.6,
            },
        ];
        let mut session =
            StreamSession::open(&g, &cfg, &root, net, ExecMode::Sequential).unwrap();
        assert_eq!(session.generation(), 1);
        assert_eq!(session.next_seq(), 0);
        let applied = session.apply(batch.clone(), true, 4).unwrap();
        assert_eq!(applied.generation, Some(2));
        assert_eq!(applied.ops, 2);
        assert!(applied.sets_repaired > 0, "the deleted edge was sampled");
        let sel = session.select().unwrap();
        let tip = session.current_graph().clone();

        // A fresh session restores the committed chain byte-identically.
        let mut reloaded =
            StreamSession::open(&g, &cfg, &root, net, ExecMode::Sequential).unwrap();
        assert_eq!(reloaded.generation(), 2);
        assert_eq!(reloaded.next_seq(), 1);
        assert_eq!(
            dim_store::graph_fingerprint(reloaded.current_graph()),
            dim_store::graph_fingerprint(&tip)
        );
        let sel2 = reloaded.select().unwrap();
        assert_eq!(sel2.seeds, sel.seeds);
        assert_eq!(sel2.marginals, sel.marginals);

        // Compaction folds the chain into a standalone base; the next
        // session resumes from it (sequence restarts) and still selects
        // the same seeds.
        let compacted = reloaded.compact(1).unwrap();
        assert_eq!(compacted, Some(3));
        let mut resumed =
            StreamSession::open(&g, &cfg, &root, net, ExecMode::Sequential).unwrap();
        assert_eq!(resumed.generation(), 3);
        assert_eq!(resumed.next_seq(), 0);
        let sel3 = resumed.select().unwrap();
        assert_eq!(sel3.seeds, sel.seeds);
        assert_eq!(sel3.marginals, sel.marginals);

        // The compacted base keeps streaming: another persisted batch
        // chains from the tip graph file.
        let applied2 = resumed
            .apply(vec![EdgeOp::Reweight { u, v, p: 0.2 }], true, 4)
            .unwrap();
        assert_eq!(applied2.generation, Some(4));
        let final_reload =
            StreamSession::open(&g, &cfg, &root, net, ExecMode::Sequential).unwrap();
        assert_eq!(final_reload.generation(), 4);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stream_apply_rejects_invalid_batch_without_side_effects() {
        let g = erdos_renyi(120, 500, WeightModel::WeightedCascade, 19);
        let cfg = config(3, 41);
        let root = temp_dir("stream-bad");
        let net = NetworkModel::zero();
        diimm_sample_generation(&g, &cfg, 2, net, ExecMode::Sequential, &root, 4).unwrap();
        let mut session =
            StreamSession::open(&g, &cfg, &root, net, ExecMode::Sequential).unwrap();
        // Out-of-range endpoint: typed error, no generation staged.
        let err = session
            .apply(vec![EdgeOp::Insert { u: 0, v: 500, p: 0.5 }], true, 4)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Delta(_)), "got {err:?}");
        assert_eq!(session.next_seq(), 0, "failed apply advances nothing");
        let left = dim_store::list_generations(&root).unwrap();
        assert_eq!(left.len(), 1, "no new generation from the failed apply");
        // The session is still usable.
        let ok = session
            .apply(vec![EdgeOp::Reweight { u: 0, v: 1, p: 0.3 }], true, 4)
            .unwrap();
        assert_eq!(ok.generation, Some(2));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn diimm_result_carries_marginals() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 6);
        let r = diimm(
            &g,
            &config(4, 3),
            2,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(r.marginals.len(), r.seeds.len());
        assert!(r.marginals.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(r.marginals.iter().sum::<u64>(), r.coverage);
    }
}
