//! Property-based tests for the IM algorithm layer.

use dim_cluster::{ExecMode, NetworkModel};
use dim_core::diimm::diimm;
use dim_core::imm::imm;
use dim_core::params::{log_choose, ImParams};
use dim_core::{ImConfig, SamplerKind};
use dim_diffusion::DiffusionModel;
use dim_graph::generators::erdos_renyi;
use dim_graph::WeightModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// log C(n,k) respects Pascal's rule: C(n,k) = C(n−1,k−1) + C(n−1,k).
    #[test]
    fn log_choose_pascal(n in 2usize..200, k in 1usize..100) {
        let k = k.min(n - 1);
        let lhs = log_choose(n, k);
        let a = log_choose(n - 1, k - 1);
        let b = log_choose(n - 1, k);
        // ln(e^a + e^b) computed stably.
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0), "{lhs} vs {rhs}");
    }

    /// The δ′ fixed point always satisfies eq. (7) and shrinks δ.
    #[test]
    fn delta_prime_fixed_point(n in 10usize..100_000, k in 1usize..64,
                               eps in 0.05f64..0.9, delta_exp in 1u32..12) {
        let k = k.min(n);
        let delta = 0.5f64.powi(delta_exp as i32);
        let p = ImParams::derive(n, k, eps, delta);
        let residual = (p.lambda_star.ceil() * p.delta_prime - delta).abs();
        prop_assert!(residual < 1e-6 * delta, "residual {residual}");
        prop_assert!(p.delta_prime <= delta);
        prop_assert!(p.lambda_prime > 0.0 && p.lambda_star > 0.0);
    }

    /// θ_t is non-decreasing in t and θ_final is non-increasing in LB.
    #[test]
    fn theta_monotonicity(n in 16usize..10_000, k in 1usize..32,
                          eps in 0.1f64..0.8) {
        let k = k.min(n);
        let p = ImParams::derive(n, k, eps, 0.01);
        for t in 1..p.max_rounds() {
            prop_assert!(p.theta_at(t + 1) >= p.theta_at(t));
        }
        prop_assert!(p.theta_final(2.0) <= p.theta_final(1.0));
        prop_assert!(p.theta_final(n as f64 / 2.0) >= 1);
    }

    /// DiIMM is deterministic and structurally sound on random graphs:
    /// fixed (graph, config, ℓ) reproduces exactly; seeds are distinct,
    /// in-range, and the estimate stays within [k, n].
    #[test]
    fn diimm_structural_soundness(seed in 0u64..500, l in 1usize..6) {
        let g = erdos_renyi(120, 600, WeightModel::WeightedCascade, seed);
        let config = ImConfig {
            k: 4,
            epsilon: 0.5,
            delta: 0.2,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        let a = diimm(&g, &config, l, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        let b = diimm(&g, &config, l, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        prop_assert_eq!(&a.seeds, &b.seeds);
        prop_assert_eq!(a.num_rr_sets, b.num_rr_sets);
        let mut sorted = a.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), a.seeds.len(), "duplicate seeds");
        prop_assert!(a.seeds.iter().all(|&s| (s as usize) < g.num_nodes()));
        prop_assert!(a.est_spread >= a.seeds.len() as f64 - 1e-9);
        prop_assert!(a.est_spread <= g.num_nodes() as f64 + 1e-9);
        prop_assert!(a.coverage as usize <= a.num_rr_sets);
    }

    /// imm ≡ diimm(ℓ=1) across random graphs and seeds (not just the one
    /// fixture the unit test uses).
    #[test]
    fn imm_diimm_equivalence(seed in 0u64..500) {
        let g = erdos_renyi(100, 500, WeightModel::WeightedCascade, seed);
        let config = ImConfig {
            k: 3,
            epsilon: 0.5,
            delta: 0.2,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::LinearThreshold),
        };
        let a = imm(&g, &config);
        let b = diimm(&g, &config, 1, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.num_rr_sets, b.num_rr_sets);
        prop_assert_eq!(a.coverage, b.coverage);
    }
}
