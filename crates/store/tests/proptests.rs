//! Property-based tests for the RR-sketch snapshot codec: arbitrary
//! shards round-trip, and truncated or bit-flipped files always surface
//! as typed errors — never panics, never silent misreads.

use dim_cluster::SamplerSpec;
use dim_coverage::PooledSets;
use dim_store::{decode_shard, encode_shard, fnv1a, ShardHeader, StoreError};
use proptest::prelude::*;

fn any_sampler() -> impl Strategy<Value = SamplerSpec> {
    prop_oneof![
        Just(SamplerSpec::StandardIc),
        Just(SamplerSpec::StandardLt),
        Just(SamplerSpec::Subsim),
    ]
}

/// A coherent shard: element records over a universe of `num_sets` node
/// ids, with a header that agrees with the payload.
fn any_shard() -> impl Strategy<Value = (ShardHeader, PooledSets)> {
    (1usize..40, any_sampler(), any::<u64>(), any::<u64>(), 1u32..6)
        .prop_flat_map(|(num_sets, sampler, fingerprint, seed, shard_count)| {
            let records = prop::collection::vec(
                prop::collection::vec(0..num_sets as u32, 0..8),
                0..30,
            );
            (
                records,
                0..shard_count,
                Just(num_sets),
                Just(sampler),
                Just(fingerprint),
                Just(seed),
                Just(shard_count),
                any::<u64>(),
            )
        })
        .prop_map(
            |(records, shard_id, num_sets, sampler, fingerprint, seed, shard_count, edges)| {
                let mut elements = PooledSets::new();
                for r in &records {
                    elements.push(r);
                }
                let header = ShardHeader {
                    fingerprint,
                    sampler,
                    seed,
                    theta: elements.len() as u64,
                    shard_id,
                    shard_count,
                    num_sets: num_sets as u64,
                    num_elements: elements.len() as u64,
                    edges_examined: edges,
                };
                (header, elements)
            },
        )
}

fn encode(header: &ShardHeader, elements: &PooledSets) -> Vec<u8> {
    let index = elements.transpose(header.num_sets as usize);
    encode_shard(header, elements, &index)
}

proptest! {
    /// Header block round-trips its canonical encoding.
    #[test]
    fn header_roundtrip((header, _) in any_shard()) {
        prop_assert_eq!(ShardHeader::decode(&header.encode()).unwrap(), header);
    }

    /// Whole shard files round-trip: header, every element record, and
    /// the transpose index all survive.
    #[test]
    fn shard_roundtrip((header, elements) in any_shard()) {
        let bytes = encode(&header, &elements);
        let snap = decode_shard(&bytes).unwrap();
        prop_assert_eq!(snap.header, header);
        prop_assert_eq!(snap.elements.len(), elements.len());
        for i in 0..elements.len() {
            prop_assert_eq!(snap.elements.get(i), elements.get(i));
        }
        let index = elements.transpose(header.num_sets as usize);
        for v in 0..index.len() {
            prop_assert_eq!(snap.index.get(v), index.get(v));
        }
    }

    /// Every possible truncation is detected as a typed error.
    #[test]
    fn truncation_detected((header, elements) in any_shard(), cut in any::<prop::sample::Index>()) {
        let bytes = encode(&header, &elements);
        let len = cut.index(bytes.len());
        prop_assert!(matches!(
            decode_shard(&bytes[..len]),
            Err(StoreError::Corrupt { .. })
        ));
    }

    /// Flipping any single bit anywhere in the file is caught by the
    /// magic/version checks or a checksum — decode never succeeds on a
    /// mutated file and never panics.
    #[test]
    fn mutation_detected((header, elements) in any_shard(),
                         pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = encode(&header, &elements);
        let p = pos.index(bytes.len());
        bytes[p] ^= 1 << bit;
        prop_assert!(decode_shard(&bytes).is_err(), "flip at byte {} decoded", p);
    }

    /// Trailing garbage after the body checksum is rejected.
    #[test]
    fn trailing_bytes_detected((header, elements) in any_shard(), tail in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = encode(&header, &elements);
        bytes.extend_from_slice(&tail);
        prop_assert!(decode_shard(&bytes).is_err());
    }

    /// Completely arbitrary byte soup never panics the decoder, even when
    /// prefixed with valid magic + version to reach the deeper parsers.
    #[test]
    fn arbitrary_bytes_never_panic(mut soup in prop::collection::vec(any::<u8>(), 0..256),
                                   with_magic in any::<bool>()) {
        if with_magic && soup.len() >= 8 {
            soup[..4].copy_from_slice(b"DIMR");
            soup[4..8].copy_from_slice(&1u32.to_le_bytes());
        }
        let _ = decode_shard(&soup);
    }

    /// Targeted offset-array corruption: overwrite one u64 in the elements
    /// section's offset array with an arbitrary value and *re-fix the body
    /// checksum*, so the hostile offsets reach the deep `PooledSets`
    /// reassembly path rather than being stopped by the checksum. Decoding
    /// must surface `StoreError::Corrupt` — never panic, never succeed.
    #[test]
    fn offset_corruption_surfaces_corrupt((header, elements) in any_shard(),
                                          slot in any::<prop::sample::Index>(),
                                          value in any::<u64>()) {
        let bytes = encode(&header, &elements);
        let hdr_end = 4 + 4 + 4 + header.encode().len() + 8;
        // Elements section: count u64, then count+1 offsets.
        let off0 = hdr_end + 8;
        let i = slot.index(elements.len() + 1);
        let pos = off0 + i * 8;
        let original = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        prop_assume!(value != original);
        let mut mutated = bytes;
        mutated[pos..pos + 8].copy_from_slice(&value.to_le_bytes());
        let body_end = mutated.len() - 8;
        let sum = fnv1a(&mutated[hdr_end..body_end]);
        mutated[body_end..].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(
            matches!(decode_shard(&mutated), Err(StoreError::Corrupt { .. })),
            "offset slot {} set to {} was not rejected as Corrupt", i, value
        );
    }

    /// FNV-1a matches the reference test vectors' structure: empty input
    /// hashes to the offset basis, and the hash is order-sensitive.
    #[test]
    fn fnv_order_sensitive(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
        if a != b {
            prop_assert_ne!(fnv1a(&[a, b]), fnv1a(&[b, a]));
        }
    }
}
