//! Generation-aware snapshot store layout.
//!
//! A *store root* holds a sequence of snapshot directories, one per
//! sampling run, named `gen-<id>` with a monotonically increasing
//! decimal id:
//!
//! ```text
//! store/
//!   gen-00000001/   shard-0-of-2.rrs  shard-1-of-2.rrs  MANIFEST
//!   gen-00000002/   shard-0-of-2.rrs  shard-1-of-2.rrs  MANIFEST
//! ```
//!
//! Each generation directory is an ordinary snapshot directory (the flat
//! layout [`crate::load_snapshot`] reads), plus a one-line `MANIFEST`
//! sidecar written *after* every shard landed. The manifest is the commit
//! record: a generation without one is in progress (or abandoned) and is
//! never served. Shard files and the manifest are both written through
//! atomic tmp-file renames, so a reader scanning the root concurrently
//! with a writer sees either a committed generation or nothing — the
//! property `dim serve`'s zero-downtime hot-reload rests on.
//!
//! The write protocol is [`begin_generation`] (reserve the next id, even
//! over uncommitted attempts) → write shards → [`commit_generation`];
//! [`load_latest_snapshot`] serves readers and [`gc_generations`] bounds
//! disk use. A root with shard files directly inside it (the pre-
//! generation flat layout) is still readable: it loads as generation 0.
//!
//! # Delta chains
//!
//! A generation holding `*.rrd` files (see [`crate::delta`]) is a *delta
//! generation*: one applied edge batch plus the re-sampled RR sets it
//! invalidated. A committed streamed state is then a *chain* — a `DIMR`
//! base generation followed by contiguous delta generations, each linked
//! to its predecessor by graph fingerprint. [`load_latest_chain`] resolves
//! and folds a chain into an ordinary [`Snapshot`] (so readers like
//! `dim serve` need no delta awareness), [`compact_generation`] folds it
//! on disk into a fresh base, and [`gc_generations`] keeps every
//! generation a live chain still references. A compacted base carries the
//! chain's *root* fingerprint in its shard headers (what requests match)
//! and persists the mutated graph alongside as [`GRAPH_FILE`], which is
//! where later deltas and resumed streams pick the true tip graph up
//! from. The store is single-writer: compaction and GC must not run
//! concurrently with another writer on the same root.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use dim_coverage::PooledSets;
use dim_graph::{DeltaBatch, Graph};

use crate::delta::{delta_base_of, delta_paths, read_delta_shard, DeltaShard};
use crate::{fnv1a, load_snapshot, write_shard, Snapshot, SnapshotRequest, StoreError};

/// Prefix of generation directory names inside a store root.
pub const GENERATION_PREFIX: &str = "gen-";
/// Name of the commit-marker file inside a generation directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the serialized mutated graph a compacted generation carries.
pub const GRAPH_FILE: &str = "graph.dimg";
/// First line tag of a manifest (versioned for forward compatibility).
const MANIFEST_TAG: &str = "dim-generation-v1";

/// Canonical directory name for generation `id` (zero-padded so lexical
/// and numeric order agree for the first 10^8 generations; parsing is
/// numeric, so larger ids still work).
pub fn generation_dir_name(id: u64) -> String {
    format!("{GENERATION_PREFIX}{id:08}")
}

/// Parses a directory name as a generation id. Strict: the prefix
/// followed by ASCII digits only.
pub fn parse_generation_dir(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(GENERATION_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Every generation directory under `root` (committed or not), sorted by
/// ascending id. Entries that do not match the naming scheme — including
/// a flat layout's shard files — are ignored. A root that does not exist
/// yet lists as empty rather than erroring, so "first sample into a fresh
/// store" needs no special casing.
pub fn list_generations(root: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = match fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(root, e)),
    };
    let mut gens: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(root, e))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        if let Some(id) = entry.file_name().to_str().and_then(parse_generation_dir) {
            gens.push((id, path));
        }
    }
    gens.sort();
    Ok(gens)
}

/// Reserves the next generation id under `root` — one past the highest
/// existing directory, committed or not, so a crashed writer's leftover
/// never gets overwritten — and creates its directory.
pub fn begin_generation(root: &Path) -> Result<(u64, PathBuf), StoreError> {
    let next = list_generations(root)?
        .last()
        .map(|&(id, _)| id + 1)
        .unwrap_or(1);
    let dir = root.join(generation_dir_name(next));
    fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    Ok((next, dir))
}

/// Writes the commit-marker manifest into a generation directory,
/// atomically (tmp file + rename). Only after this returns does the
/// generation become visible to [`load_latest_snapshot`].
pub fn commit_generation(dir: &Path, id: u64) -> Result<(), StoreError> {
    let tmp = dir.join(format!(".{MANIFEST_FILE}.tmp"));
    let content = format!("{MANIFEST_TAG} {id}\n");
    fs::write(&tmp, content).map_err(|e| io_err(&tmp, e))?;
    let path = dir.join(MANIFEST_FILE);
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(())
}

/// Reads a generation directory's manifest: `Ok(None)` when absent
/// (uncommitted), the committed id when present, `Corrupt` when the file
/// exists but does not parse or its id disagrees with the expectation.
pub fn read_manifest(dir: &Path) -> Result<Option<u64>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let content = match fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    let corrupt = || StoreError::Corrupt {
        path: Some(path.clone()),
        detail: "malformed generation manifest",
    };
    let line = content.lines().next().ok_or_else(corrupt)?;
    let id = line
        .strip_prefix(MANIFEST_TAG)
        .map(str::trim)
        .and_then(|d| d.parse::<u64>().ok())
        .ok_or_else(corrupt)?;
    Ok(Some(id))
}

/// The newest *committed* generation under `root` (directory id and
/// manifest agree), or `None` when the root has no committed generation.
pub fn latest_generation(root: &Path) -> Result<Option<(u64, PathBuf)>, StoreError> {
    for (id, dir) in list_generations(root)?.into_iter().rev() {
        if read_manifest(&dir)? == Some(id) {
            return Ok(Some((id, dir)));
        }
    }
    Ok(None)
}

/// How a loaded generation relates to its delta chain: which base it
/// folds over, the edge batches applied on top (empty for a plain base),
/// and where a resumed stream continues.
#[derive(Clone, Debug)]
pub struct ChainInfo {
    /// Generation id of the `DIMR` base (the loaded generation itself
    /// when no deltas are stacked on it).
    pub base_generation: u64,
    /// Directory of that base generation.
    pub base_dir: PathBuf,
    /// The chain's edge batches in application order.
    pub batches: Vec<DeltaBatch>,
    /// Fingerprint of the graph after every batch (the base graph's when
    /// `batches` is empty) — what the next delta must name as parent.
    pub tip_fingerprint: u64,
    /// Sequence number the next batch in this chain must carry.
    pub next_seq: u64,
}

/// Fingerprint of the graph a base generation describes: the hash of its
/// persisted [`GRAPH_FILE`] when present (a compacted base, whose shard
/// headers keep the chain's *root* fingerprint), the shard fingerprint
/// otherwise.
fn base_graph_fingerprint(dir: &Path, fallback: u64) -> Result<u64, StoreError> {
    let path = dir.join(GRAPH_FILE);
    match fs::read(&path) {
        Ok(bytes) => Ok(fnv1a(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(fallback),
        Err(e) => Err(io_err(&path, e)),
    }
}

/// Loads the mutated graph a compacted generation persisted alongside its
/// shards, or `None` for generations without one.
pub fn read_graph_file(dir: &Path) -> Result<Option<Graph>, StoreError> {
    let path = dir.join(GRAPH_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    dim_graph::binary::read_binary(&bytes[..])
        .map(Some)
        .map_err(|_| StoreError::Corrupt {
            path: Some(path),
            detail: "malformed graph file",
        })
}

/// Reads one delta generation: every `*.rrd` shard, mutually consistent
/// (same linkage, provenance, and batch), complete `0..shard_count`,
/// sorted by shard id.
fn read_delta_generation(dir: &Path) -> Result<Vec<DeltaShard>, StoreError> {
    let paths = delta_paths(dir)?;
    if paths.is_empty() {
        return Err(StoreError::Empty {
            dir: dir.to_path_buf(),
        });
    }
    let mut shards: Vec<DeltaShard> = Vec::with_capacity(paths.len());
    for path in &paths {
        let shard = read_delta_shard(path)?;
        if let Some(first) = shards.first() {
            let a = &shard.header;
            let b = &first.header;
            let agree = a.base_generation == b.base_generation
                && a.parent_fingerprint == b.parent_fingerprint
                && a.fingerprint == b.fingerprint
                && a.sampler == b.sampler
                && a.seed == b.seed
                && a.theta == b.theta
                && a.batch_seq == b.batch_seq
                && a.shard_count == b.shard_count
                && a.num_sets == b.num_sets;
            if !agree {
                return Err(StoreError::Corrupt {
                    path: Some(path.clone()),
                    detail: "delta shards disagree on provenance",
                });
            }
            if shard.batch != first.batch {
                return Err(StoreError::Corrupt {
                    path: Some(path.clone()),
                    detail: "delta shards carry different batches",
                });
            }
        }
        shards.push(shard);
    }
    let shard_count = shards[0].header.shard_count;
    let mut seen = vec![false; shard_count as usize];
    for (shard, path) in shards.iter().zip(&paths) {
        let id = shard.header.shard_id as usize;
        if seen[id] {
            return Err(StoreError::Corrupt {
                path: Some(path.clone()),
                detail: "duplicate delta shard id",
            });
        }
        seen[id] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(StoreError::MissingShard {
            dir: dir.to_path_buf(),
            shard_id: missing as u32,
            shard_count,
        });
    }
    shards.sort_by_key(|s| s.header.shard_id);
    Ok(shards)
}

/// Resolves and folds the delta chain whose tip is `gens[tip_idx]`: loads
/// the base snapshot, validates every link (base id, sequence, graph
/// fingerprints, provenance), and applies the repaired RR sets in order.
fn load_chain(
    gens: &[(u64, PathBuf)],
    tip_idx: usize,
    request: &SnapshotRequest,
) -> Result<(Snapshot, ChainInfo), StoreError> {
    let (tip_id, tip_dir) = &gens[tip_idx];
    let corrupt = |detail: &'static str| StoreError::Corrupt {
        path: Some(tip_dir.clone()),
        detail,
    };
    let base_id = read_delta_generation(tip_dir)?[0].header.base_generation;
    if base_id >= *tip_id {
        return Err(corrupt("delta chain base not older than tip"));
    }
    // The chain is the committed generations in [base, tip]; uncommitted
    // ids in between are crashed or in-progress attempts and do not
    // participate.
    let mut base_dir: Option<&PathBuf> = None;
    let mut link_dirs: Vec<&PathBuf> = Vec::new();
    for (id, dir) in &gens[..=tip_idx] {
        if *id < base_id || read_manifest(dir)? != Some(*id) {
            continue;
        }
        if *id == base_id {
            base_dir = Some(dir);
        } else {
            link_dirs.push(dir);
        }
    }
    let base_dir = base_dir.ok_or_else(|| corrupt("delta chain base generation missing"))?;
    let snapshot = load_snapshot(base_dir, request)?;
    let base_fp = base_graph_fingerprint(base_dir, snapshot.fingerprint)?;
    let mut tip_fp = base_fp;
    let mut batches: Vec<DeltaBatch> = Vec::with_capacity(link_dirs.len());
    let mut links: Vec<Vec<DeltaShard>> = Vec::with_capacity(link_dirs.len());
    for dir in link_dirs {
        let shards = match read_delta_generation(dir) {
            Ok(shards) => shards,
            Err(StoreError::Empty { .. }) => {
                return Err(corrupt("delta chain interrupted by a non-delta generation"))
            }
            Err(e) => return Err(e),
        };
        let h = shards[0].header;
        if h.base_generation != base_id {
            return Err(corrupt("delta chain link names a different base"));
        }
        if h.batch_seq != batches.len() as u64 {
            return Err(corrupt("delta chain sequence gap"));
        }
        if h.parent_fingerprint != tip_fp {
            return Err(corrupt("delta chain fingerprint mismatch"));
        }
        if h.sampler != snapshot.sampler
            || h.seed != snapshot.seed
            || h.theta != snapshot.theta
            || h.num_sets != snapshot.num_sets
            || h.shard_count != snapshot.shard_count
        {
            return Err(corrupt("delta chain provenance mismatch"));
        }
        for (s, d) in shards.iter().enumerate() {
            if d.header.num_elements != snapshot.shards[s].header.num_elements {
                return Err(corrupt("delta chain shard size mismatch"));
            }
        }
        tip_fp = h.fingerprint;
        batches.push(shards[0].batch.clone());
        links.push(shards);
    }
    // Fold: for each shard, the last repair of a set wins; untouched sets
    // keep their base bytes.
    let num_sets = snapshot.num_sets as usize;
    let mut folded = snapshot;
    for s in 0..folded.shards.len() {
        let mut overrides: BTreeMap<u32, &[u32]> = BTreeMap::new();
        for link in &links {
            for (idx, nodes) in &link[s].repaired {
                overrides.insert(*idx, nodes.as_slice());
            }
        }
        if overrides.is_empty() {
            continue;
        }
        let shard = &mut folded.shards[s];
        let mut rebuilt = PooledSets::new();
        for i in 0..shard.elements.len() {
            match overrides.get(&(i as u32)) {
                Some(nodes) => rebuilt.push(nodes),
                None => rebuilt.push(shard.elements.get(i)),
            };
        }
        shard.index = rebuilt.transpose(num_sets);
        shard.elements = rebuilt;
    }
    let base_generation = base_id;
    let next_seq = batches.len() as u64;
    Ok((
        folded,
        ChainInfo {
            base_generation,
            base_dir: base_dir.clone(),
            batches,
            tip_fingerprint: tip_fp,
            next_seq,
        },
    ))
}

/// Loads the newest committed generation under `root` that validates
/// against `request`, returning its id alongside the snapshot.
///
/// Uncommitted generations (no manifest) are skipped — they are still
/// being written. So is a committed generation whose shards are
/// incomplete ([`StoreError::MissingShard`] / [`StoreError::Empty`],
/// which a crash between shard writes and GC can leave behind); any other
/// failure — corruption, provenance mismatch, I/O — surfaces immediately,
/// because silently falling back to an older sketch would mask it. A root
/// holding *only* uncommitted generations reports
/// [`StoreError::Uncommitted`] naming the newest attempt, so callers can
/// tell "nothing sampled yet" from "writer crashed before commit".
///
/// A generation holding delta shards loads as its whole chain (base +
/// deltas folded in order), so serving layers stay delta-oblivious. A
/// root with no generation directories at all falls back to the flat
/// pre-generation layout: the root itself is loaded as generation 0.
pub fn load_latest_snapshot(
    root: &Path,
    request: &SnapshotRequest,
) -> Result<(u64, Snapshot), StoreError> {
    load_latest_chain(root, request).map(|(id, snapshot, _)| (id, snapshot))
}

/// [`load_latest_snapshot`] plus the resolved [`ChainInfo`] — what
/// streaming writers need to extend or compact the chain.
pub fn load_latest_chain(
    root: &Path,
    request: &SnapshotRequest,
) -> Result<(u64, Snapshot, ChainInfo), StoreError> {
    let gens = list_generations(root)?;
    if gens.is_empty() {
        let snapshot = load_snapshot(root, request)?;
        let tip_fingerprint = base_graph_fingerprint(root, snapshot.fingerprint)?;
        return Ok((
            0,
            snapshot,
            ChainInfo {
                base_generation: 0,
                base_dir: root.to_path_buf(),
                batches: Vec::new(),
                tip_fingerprint,
                next_seq: 0,
            },
        ));
    }
    let mut any_committed = false;
    let mut newest_uncommitted: Option<u64> = None;
    for tip_idx in (0..gens.len()).rev() {
        let (id, dir) = &gens[tip_idx];
        if read_manifest(dir)? != Some(*id) {
            newest_uncommitted.get_or_insert(*id);
            continue;
        }
        any_committed = true;
        let result = if delta_paths(dir)?.is_empty() {
            load_snapshot(dir, request).and_then(|snapshot| {
                let tip_fingerprint = base_graph_fingerprint(dir, snapshot.fingerprint)?;
                Ok((
                    snapshot,
                    ChainInfo {
                        base_generation: *id,
                        base_dir: dir.clone(),
                        batches: Vec::new(),
                        tip_fingerprint,
                        next_seq: 0,
                    },
                ))
            })
        } else {
            load_chain(&gens, tip_idx, request)
        };
        match result {
            Ok((snapshot, chain)) => return Ok((*id, snapshot, chain)),
            Err(StoreError::MissingShard { .. }) | Err(StoreError::Empty { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    // Distinguish "nothing committed yet" from "committed but unloadable".
    match newest_uncommitted {
        Some(newest) if !any_committed => Err(StoreError::Uncommitted {
            dir: root.to_path_buf(),
            newest,
        }),
        _ => Err(StoreError::Empty {
            dir: root.to_path_buf(),
        }),
    }
}

/// Folds the newest committed chain into a fresh full base generation:
/// base + deltas become one new `DIMR` generation carrying the chain's
/// root fingerprint in its shard headers and the mutated tip graph as
/// [`GRAPH_FILE`].
///
/// `graph` must be the chain's tip graph (base graph with every batch
/// applied) — its fingerprint is checked against the chain before
/// anything is written. Shards are staged in a `gen-<id>.tmp` directory
/// and renamed into place, so a crashed compaction leaves only a staging
/// directory for [`gc_generations`] to sweep, never a half-visible
/// generation. Returns `Ok(None)` when the newest generation has no
/// deltas to fold.
pub fn compact_generation(
    root: &Path,
    request: &SnapshotRequest,
    graph: &Graph,
) -> Result<Option<(u64, PathBuf)>, StoreError> {
    let (_tip, snapshot, chain) = load_latest_chain(root, request)?;
    if chain.batches.is_empty() {
        return Ok(None);
    }
    let found = crate::graph_fingerprint(graph);
    if found != chain.tip_fingerprint {
        return Err(StoreError::Mismatch {
            path: root.to_path_buf(),
            field: "tip fingerprint",
            expected: chain.tip_fingerprint,
            found,
        });
    }
    let next = list_generations(root)?
        .last()
        .map(|&(id, _)| id + 1)
        .unwrap_or(1);
    let dir = root.join(generation_dir_name(next));
    let stage = root.join(format!("{}.tmp", generation_dir_name(next)));
    if stage.exists() {
        fs::remove_dir_all(&stage).map_err(|e| io_err(&stage, e))?;
    }
    fs::create_dir_all(&stage).map_err(|e| io_err(&stage, e))?;
    for shard in &snapshot.shards {
        write_shard(&stage, &shard.header, &shard.elements)?;
    }
    let mut buf = Vec::new();
    dim_graph::binary::write_binary(graph, &mut buf)
        .expect("in-memory serialization cannot fail");
    let graph_path = stage.join(GRAPH_FILE);
    fs::write(&graph_path, &buf).map_err(|e| io_err(&graph_path, e))?;
    fs::rename(&stage, &dir).map_err(|e| io_err(&dir, e))?;
    commit_generation(&dir, next)?;
    Ok(Some((next, dir)))
}

/// Deletes old generation directories, keeping the newest `keep` (by id,
/// committed or not — an uncommitted newest generation is a write in
/// progress and must survive) *plus* every generation a kept delta chain
/// still references: a kept delta generation pins its base and all
/// intermediate links, so a served chain never loses its foundation.
/// `keep` is clamped to at least 1. Also sweeps `gen-<id>.tmp` staging
/// directories left behind by crashed compactions (the store is
/// single-writer, so none can belong to a live one). Returns the removed
/// generation ids in ascending order.
pub fn gc_generations(root: &Path, keep: usize) -> Result<Vec<u64>, StoreError> {
    sweep_staging(root)?;
    let keep = keep.max(1);
    let gens = list_generations(root)?;
    if gens.len() <= keep {
        return Ok(Vec::new());
    }
    let mut first_kept = gens.len() - keep;
    // Chain closure: lower the boundary until every kept delta
    // generation's base (and therefore every intermediate link — ids are
    // ordered) is kept too.
    loop {
        let mut min_base: Option<u64> = None;
        for (_, dir) in &gens[first_kept..] {
            if let Some(base) = delta_base_of(dir)? {
                min_base = Some(min_base.map_or(base, |m| m.min(base)));
            }
        }
        match min_base {
            Some(base) => {
                let lowered = gens.partition_point(|&(id, _)| id < base);
                if lowered >= first_kept {
                    break;
                }
                first_kept = lowered;
            }
            None => break,
        }
    }
    let mut removed = Vec::new();
    for (id, dir) in &gens[..first_kept] {
        fs::remove_dir_all(dir).map_err(|e| io_err(dir, e))?;
        removed.push(*id);
    }
    Ok(removed)
}

/// Removes `gen-<id>.tmp` staging directories (crashed compactions).
fn sweep_staging(root: &Path) -> Result<(), StoreError> {
    let entries = match fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(io_err(root, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(root, e))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let is_staging = name
            .to_str()
            .and_then(|n| n.strip_suffix(".tmp"))
            .and_then(parse_generation_dir)
            .is_some();
        if is_staging {
            fs::remove_dir_all(&path).map_err(|e| io_err(&path, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_shard, ShardHeader};
    use dim_cluster::SamplerSpec;
    use dim_coverage::PooledSets;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dim-store-gen-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn request() -> SnapshotRequest {
        SnapshotRequest {
            fingerprint: 0xfeed_f00d,
            sampler: SamplerSpec::Subsim,
            shard_count: None,
        }
    }

    /// Writes a complete single-shard snapshot into `dir`; `mark`
    /// distinguishes the generations' contents.
    fn write_snapshot(dir: &Path, mark: u32) {
        let mut elements = PooledSets::new();
        elements.push(&[mark % 5]);
        elements.push(&[(mark + 1) % 5, 4]);
        let header = ShardHeader {
            fingerprint: 0xfeed_f00d,
            sampler: SamplerSpec::Subsim,
            seed: mark as u64,
            theta: 2,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements: 2,
            edges_examined: 1,
        };
        write_shard(dir, &header, &elements).unwrap();
    }

    #[test]
    fn dir_names_roundtrip_and_parse_strictly() {
        assert_eq!(generation_dir_name(7), "gen-00000007");
        assert_eq!(parse_generation_dir("gen-00000007"), Some(7));
        assert_eq!(parse_generation_dir("gen-123456789012"), Some(123_456_789_012));
        assert_eq!(parse_generation_dir("gen-"), None);
        assert_eq!(parse_generation_dir("gen-07x"), None);
        assert_eq!(parse_generation_dir("generation-7"), None);
        assert_eq!(parse_generation_dir("shard-0-of-1.rrs"), None);
    }

    #[test]
    fn begin_commit_list_latest() {
        let root = temp_root("begin");
        assert!(list_generations(&root).unwrap().is_empty());
        assert!(latest_generation(&root).unwrap().is_none());

        let (id1, dir1) = begin_generation(&root).unwrap();
        assert_eq!(id1, 1);
        // In progress: listed, but not latest-committed.
        assert_eq!(list_generations(&root).unwrap().len(), 1);
        assert!(latest_generation(&root).unwrap().is_none());
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 1);

        // The next id is reserved past any existing directory, even an
        // uncommitted one.
        let (id2, _dir2) = begin_generation(&root).unwrap();
        assert_eq!(id2, 2);
        let (id3, dir3) = begin_generation(&root).unwrap();
        assert_eq!(id3, 3);
        write_snapshot(&dir3, 1);
        commit_generation(&dir3, id3).unwrap();
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_skips_uncommitted_and_pins_id() {
        let root = temp_root("load");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        // Generation 2 has shards but no manifest: a write in progress.
        let (_id2, dir2) = begin_generation(&root).unwrap();
        write_snapshot(&dir2, 7);
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 1);
        assert_eq!(snap.seed, 0);
        // Commit it: now it is the one served.
        commit_generation(&dir2, 2).unwrap();
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 2);
        assert_eq!(snap.seed, 7);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_falls_back_to_flat_layout() {
        let root = temp_root("flat");
        write_snapshot(&root, 3);
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 0);
        assert_eq!(snap.seed, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_reports_empty_store() {
        let root = temp_root("empty");
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Empty { .. })
        ));
        // A root holding only uncommitted generations is not "empty" — it
        // names the newest attempt so the operator can tell a crashed
        // writer from a store that was never sampled into.
        let (_, dir) = begin_generation(&root).unwrap();
        write_snapshot(&dir, 0);
        let (id2, dir2) = begin_generation(&root).unwrap();
        write_snapshot(&dir2, 1);
        match load_latest_snapshot(&root, &request()) {
            Err(StoreError::Uncommitted { dir, newest }) => {
                assert_eq!(dir, root);
                assert_eq!(newest, id2);
            }
            other => panic!("expected Uncommitted, got {other:?}"),
        }
        // Once anything commits, unloadable leftovers report Empty again.
        commit_generation(&dir2, id2).unwrap();
        fs::remove_file(dir2.join(crate::shard_file_name(0, 1))).unwrap();
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Empty { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_surfaces_corruption_instead_of_falling_back() {
        let root = temp_root("corrupt");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        let (id2, dir2) = begin_generation(&root).unwrap();
        write_snapshot(&dir2, 1);
        commit_generation(&dir2, id2).unwrap();
        // Corrupt the newest generation's shard.
        let victim = dir2.join(crate::shard_file_name(0, 1));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn manifest_mismatch_is_corrupt() {
        let root = temp_root("manifest");
        let (_, dir) = begin_generation(&root).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "not a manifest\n").unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        // A manifest naming the wrong id does not commit this directory.
        fs::write(dir.join(MANIFEST_FILE), format!("{MANIFEST_TAG} 99\n")).unwrap();
        assert!(latest_generation(&root).unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_keeps_newest_and_reports_removed() {
        let root = temp_root("gc");
        for mark in 0..5 {
            let (id, dir) = begin_generation(&root).unwrap();
            write_snapshot(&dir, mark);
            commit_generation(&dir, id).unwrap();
        }
        let removed = gc_generations(&root, 2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        let left: Vec<u64> = list_generations(&root)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(left, vec![4, 5]);
        // keep is clamped to 1: the latest always survives.
        let removed = gc_generations(&root, 0).unwrap();
        assert_eq!(removed, vec![4]);
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 5);
        // Ids keep increasing after GC (no reuse).
        let (id, _) = begin_generation(&root).unwrap();
        assert_eq!(id, 6);
        fs::remove_dir_all(&root).unwrap();
    }

    use crate::delta::{write_delta_shard, DeltaShardHeader};
    use dim_graph::{DeltaBatch, EdgeOp, GraphBuilder, WeightModel};

    /// Writes a committed single-shard delta generation chained onto
    /// `base_generation` with the given fingerprint link and repairs.
    fn write_delta_generation(
        root: &Path,
        base_generation: u64,
        seq: u64,
        parent_fingerprint: u64,
        fingerprint: u64,
        repaired: Vec<(u32, Vec<u32>)>,
    ) -> (u64, PathBuf) {
        let (id, dir) = begin_generation(root).unwrap();
        let header = DeltaShardHeader {
            base_generation,
            parent_fingerprint,
            fingerprint,
            sampler: SamplerSpec::Subsim,
            seed: 0,
            theta: 2,
            batch_seq: seq,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements: 2,
            repaired_count: repaired.len() as u64,
        };
        let batch = DeltaBatch::new(seq, vec![EdgeOp::Delete { u: 0, v: 1 }]);
        write_delta_shard(&dir, &header, &batch, &repaired).unwrap();
        commit_generation(&dir, id).unwrap();
        (id, dir)
    }

    #[test]
    fn chain_loads_folded_snapshot() {
        let root = temp_root("chain");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0); // elements [[0], [1, 4]], fp 0xfeed_f00d
        commit_generation(&dir1, id1).unwrap();
        write_delta_generation(&root, id1, 0, 0xfeed_f00d, 0xaaaa, vec![(1, vec![2, 3])]);
        write_delta_generation(&root, id1, 1, 0xaaaa, 0xbbbb, vec![(0, vec![1])]);

        let (id, snap, chain) = load_latest_chain(&root, &request()).unwrap();
        assert_eq!(id, 3);
        assert_eq!(chain.base_generation, id1);
        assert_eq!(chain.batches.len(), 2);
        assert_eq!(chain.tip_fingerprint, 0xbbbb);
        assert_eq!(chain.next_seq, 2);
        let shard = &snap.shards[0];
        assert_eq!(shard.elements.get(0), &[1][..]);
        assert_eq!(shard.elements.get(1), &[2, 3][..]);
        // The folded index is the transpose of the folded elements.
        assert_eq!(shard.index.get(1), &[0][..]);
        assert_eq!(shard.index.get(2), &[1][..]);
        assert_eq!(shard.index.get(4), &[] as &[u32]);
        // The request still names the ROOT graph; the plain loader agrees.
        let (id, snap2) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 3);
        assert_eq!(snap2.shards[0].elements.get(0), &[1][..]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chain_rejects_broken_fingerprint_link() {
        let root = temp_root("chainlink");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        // parent_fingerprint does not match the base graph.
        write_delta_generation(&root, id1, 0, 0xdead, 0xaaaa, vec![(0, vec![1])]);
        match load_latest_chain(&root, &request()) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "delta chain fingerprint mismatch")
            }
            other => panic!("expected corrupt chain, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_keeps_chain_base_and_sweeps_staging() {
        let root = temp_root("gcchain");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        write_delta_generation(&root, id1, 0, 0xfeed_f00d, 0xaaaa, vec![(0, vec![1])]);
        write_delta_generation(&root, id1, 1, 0xaaaa, 0xbbbb, vec![(1, vec![2])]);
        // Keeping only the tip must pin the whole chain down to its base.
        assert!(gc_generations(&root, 1).unwrap().is_empty());
        assert_eq!(list_generations(&root).unwrap().len(), 3);

        // A fresh base makes the old chain collectable.
        let (id4, dir4) = begin_generation(&root).unwrap();
        write_snapshot(&dir4, 1);
        commit_generation(&dir4, id4).unwrap();
        let (id5, _) = write_delta_generation(&root, id4, 0, 0xfeed_f00d, 0xcccc, vec![]);

        // A crashed compaction's staging dir gets swept; non-staging names
        // survive.
        let staging = root.join("gen-00000009.tmp");
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("shard-0-of-1.rrs"), b"junk").unwrap();
        let unrelated = root.join("scratch.tmp");
        fs::create_dir_all(&unrelated).unwrap();

        let removed = gc_generations(&root, 1).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        let left: Vec<u64> = list_generations(&root)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(left, vec![id4, id5]);
        assert!(!staging.exists(), "staging dir swept");
        assert!(unrelated.exists(), "non-generation tmp dir untouched");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compact_folds_chain_and_resumes_from_graph_file() {
        let root = temp_root("compact");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        // The "mutated" graph the chain supposedly produced.
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.25);
        let graph = b.build(WeightModel::WeightedCascade);
        let tip_fp = crate::graph_fingerprint(&graph);
        write_delta_generation(&root, id1, 0, 0xfeed_f00d, tip_fp, vec![(0, vec![3])]);

        // Compacting with the wrong graph is refused before any write.
        let wrong = GraphBuilder::new(5).build(WeightModel::WeightedCascade);
        assert!(matches!(
            compact_generation(&root, &request(), &wrong),
            Err(StoreError::Mismatch { field: "tip fingerprint", .. })
        ));

        let (id3, dir3) = compact_generation(&root, &request(), &graph)
            .unwrap()
            .expect("chain had deltas to fold");
        assert_eq!(id3, 3);
        // The compacted base answers the ROOT request, serves the folded
        // sets, and exposes the tip graph for resumed streams.
        let (id, snap, chain) = load_latest_chain(&root, &request()).unwrap();
        assert_eq!(id, id3);
        assert_eq!(snap.shards[0].elements.get(0), &[3][..]);
        assert!(chain.batches.is_empty());
        assert_eq!(chain.next_seq, 0);
        assert_eq!(chain.tip_fingerprint, tip_fp);
        let restored = read_graph_file(&dir3).unwrap().expect("graph persisted");
        assert_eq!(crate::graph_fingerprint(&restored), tip_fp);
        // No deltas left: compaction is idempotent.
        assert!(compact_generation(&root, &request(), &graph).unwrap().is_none());
        // A post-compaction delta chains off the persisted tip graph.
        write_delta_generation(&root, id3, 0, tip_fp, 0x1234, vec![(1, vec![0])]);
        let (id, snap, chain) = load_latest_chain(&root, &request()).unwrap();
        assert_eq!(id, id3 + 1);
        assert_eq!(snap.shards[0].elements.get(1), &[0][..]);
        assert_eq!(chain.base_generation, id3);
        assert_eq!(chain.tip_fingerprint, 0x1234);
        fs::remove_dir_all(&root).unwrap();
    }
}
