//! Generation-aware snapshot store layout.
//!
//! A *store root* holds a sequence of snapshot directories, one per
//! sampling run, named `gen-<id>` with a monotonically increasing
//! decimal id:
//!
//! ```text
//! store/
//!   gen-00000001/   shard-0-of-2.rrs  shard-1-of-2.rrs  MANIFEST
//!   gen-00000002/   shard-0-of-2.rrs  shard-1-of-2.rrs  MANIFEST
//! ```
//!
//! Each generation directory is an ordinary snapshot directory (the flat
//! layout [`crate::load_snapshot`] reads), plus a one-line `MANIFEST`
//! sidecar written *after* every shard landed. The manifest is the commit
//! record: a generation without one is in progress (or abandoned) and is
//! never served. Shard files and the manifest are both written through
//! atomic tmp-file renames, so a reader scanning the root concurrently
//! with a writer sees either a committed generation or nothing — the
//! property `dim serve`'s zero-downtime hot-reload rests on.
//!
//! The write protocol is [`begin_generation`] (reserve the next id, even
//! over uncommitted attempts) → write shards → [`commit_generation`];
//! [`load_latest_snapshot`] serves readers and [`gc_generations`] bounds
//! disk use. A root with shard files directly inside it (the pre-
//! generation flat layout) is still readable: it loads as generation 0.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{load_snapshot, Snapshot, SnapshotRequest, StoreError};

/// Prefix of generation directory names inside a store root.
pub const GENERATION_PREFIX: &str = "gen-";
/// Name of the commit-marker file inside a generation directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// First line tag of a manifest (versioned for forward compatibility).
const MANIFEST_TAG: &str = "dim-generation-v1";

/// Canonical directory name for generation `id` (zero-padded so lexical
/// and numeric order agree for the first 10^8 generations; parsing is
/// numeric, so larger ids still work).
pub fn generation_dir_name(id: u64) -> String {
    format!("{GENERATION_PREFIX}{id:08}")
}

/// Parses a directory name as a generation id. Strict: the prefix
/// followed by ASCII digits only.
pub fn parse_generation_dir(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(GENERATION_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Every generation directory under `root` (committed or not), sorted by
/// ascending id. Entries that do not match the naming scheme — including
/// a flat layout's shard files — are ignored. A root that does not exist
/// yet lists as empty rather than erroring, so "first sample into a fresh
/// store" needs no special casing.
pub fn list_generations(root: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = match fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(root, e)),
    };
    let mut gens: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(root, e))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        if let Some(id) = entry.file_name().to_str().and_then(parse_generation_dir) {
            gens.push((id, path));
        }
    }
    gens.sort();
    Ok(gens)
}

/// Reserves the next generation id under `root` — one past the highest
/// existing directory, committed or not, so a crashed writer's leftover
/// never gets overwritten — and creates its directory.
pub fn begin_generation(root: &Path) -> Result<(u64, PathBuf), StoreError> {
    let next = list_generations(root)?
        .last()
        .map(|&(id, _)| id + 1)
        .unwrap_or(1);
    let dir = root.join(generation_dir_name(next));
    fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    Ok((next, dir))
}

/// Writes the commit-marker manifest into a generation directory,
/// atomically (tmp file + rename). Only after this returns does the
/// generation become visible to [`load_latest_snapshot`].
pub fn commit_generation(dir: &Path, id: u64) -> Result<(), StoreError> {
    let tmp = dir.join(format!(".{MANIFEST_FILE}.tmp"));
    let content = format!("{MANIFEST_TAG} {id}\n");
    fs::write(&tmp, content).map_err(|e| io_err(&tmp, e))?;
    let path = dir.join(MANIFEST_FILE);
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(())
}

/// Reads a generation directory's manifest: `Ok(None)` when absent
/// (uncommitted), the committed id when present, `Corrupt` when the file
/// exists but does not parse or its id disagrees with the expectation.
pub fn read_manifest(dir: &Path) -> Result<Option<u64>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let content = match fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    let corrupt = || StoreError::Corrupt {
        path: Some(path.clone()),
        detail: "malformed generation manifest",
    };
    let line = content.lines().next().ok_or_else(corrupt)?;
    let id = line
        .strip_prefix(MANIFEST_TAG)
        .map(str::trim)
        .and_then(|d| d.parse::<u64>().ok())
        .ok_or_else(corrupt)?;
    Ok(Some(id))
}

/// The newest *committed* generation under `root` (directory id and
/// manifest agree), or `None` when the root has no committed generation.
pub fn latest_generation(root: &Path) -> Result<Option<(u64, PathBuf)>, StoreError> {
    for (id, dir) in list_generations(root)?.into_iter().rev() {
        if read_manifest(&dir)? == Some(id) {
            return Ok(Some((id, dir)));
        }
    }
    Ok(None)
}

/// Loads the newest committed generation under `root` that validates
/// against `request`, returning its id alongside the snapshot.
///
/// Uncommitted generations (no manifest) are skipped — they are still
/// being written. So is a committed generation whose shards are
/// incomplete ([`StoreError::MissingShard`] / [`StoreError::Empty`],
/// which a crash between shard writes and GC can leave behind); any other
/// failure — corruption, provenance mismatch, I/O — surfaces immediately,
/// because silently falling back to an older sketch would mask it.
///
/// A root with no generation directories at all falls back to the flat
/// pre-generation layout: the root itself is loaded as generation 0.
pub fn load_latest_snapshot(
    root: &Path,
    request: &SnapshotRequest,
) -> Result<(u64, Snapshot), StoreError> {
    let gens = list_generations(root)?;
    if gens.is_empty() {
        return load_snapshot(root, request).map(|s| (0, s));
    }
    let mut any_committed = false;
    for (id, dir) in gens.into_iter().rev() {
        if read_manifest(&dir)? != Some(id) {
            continue;
        }
        any_committed = true;
        match load_snapshot(&dir, request) {
            Ok(snapshot) => return Ok((id, snapshot)),
            Err(StoreError::MissingShard { .. }) | Err(StoreError::Empty { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    // Distinguish "nothing committed yet" from "committed but unloadable".
    let _ = any_committed;
    Err(StoreError::Empty {
        dir: root.to_path_buf(),
    })
}

/// Deletes old generation directories, keeping the newest `keep` (by id,
/// committed or not — an uncommitted newest generation is a write in
/// progress and must survive). `keep` is clamped to at least 1. Returns
/// the removed ids in ascending order.
pub fn gc_generations(root: &Path, keep: usize) -> Result<Vec<u64>, StoreError> {
    let keep = keep.max(1);
    let gens = list_generations(root)?;
    if gens.len() <= keep {
        return Ok(Vec::new());
    }
    let mut removed = Vec::new();
    for (id, dir) in &gens[..gens.len() - keep] {
        fs::remove_dir_all(dir).map_err(|e| io_err(dir, e))?;
        removed.push(*id);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_shard, ShardHeader};
    use dim_cluster::SamplerSpec;
    use dim_coverage::PooledSets;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dim-store-gen-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn request() -> SnapshotRequest {
        SnapshotRequest {
            fingerprint: 0xfeed_f00d,
            sampler: SamplerSpec::Subsim,
            shard_count: None,
        }
    }

    /// Writes a complete single-shard snapshot into `dir`; `mark`
    /// distinguishes the generations' contents.
    fn write_snapshot(dir: &Path, mark: u32) {
        let mut elements = PooledSets::new();
        elements.push(&[mark % 5]);
        elements.push(&[(mark + 1) % 5, 4]);
        let header = ShardHeader {
            fingerprint: 0xfeed_f00d,
            sampler: SamplerSpec::Subsim,
            seed: mark as u64,
            theta: 2,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements: 2,
            edges_examined: 1,
        };
        write_shard(dir, &header, &elements).unwrap();
    }

    #[test]
    fn dir_names_roundtrip_and_parse_strictly() {
        assert_eq!(generation_dir_name(7), "gen-00000007");
        assert_eq!(parse_generation_dir("gen-00000007"), Some(7));
        assert_eq!(parse_generation_dir("gen-123456789012"), Some(123_456_789_012));
        assert_eq!(parse_generation_dir("gen-"), None);
        assert_eq!(parse_generation_dir("gen-07x"), None);
        assert_eq!(parse_generation_dir("generation-7"), None);
        assert_eq!(parse_generation_dir("shard-0-of-1.rrs"), None);
    }

    #[test]
    fn begin_commit_list_latest() {
        let root = temp_root("begin");
        assert!(list_generations(&root).unwrap().is_empty());
        assert!(latest_generation(&root).unwrap().is_none());

        let (id1, dir1) = begin_generation(&root).unwrap();
        assert_eq!(id1, 1);
        // In progress: listed, but not latest-committed.
        assert_eq!(list_generations(&root).unwrap().len(), 1);
        assert!(latest_generation(&root).unwrap().is_none());
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 1);

        // The next id is reserved past any existing directory, even an
        // uncommitted one.
        let (id2, _dir2) = begin_generation(&root).unwrap();
        assert_eq!(id2, 2);
        let (id3, dir3) = begin_generation(&root).unwrap();
        assert_eq!(id3, 3);
        write_snapshot(&dir3, 1);
        commit_generation(&dir3, id3).unwrap();
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_skips_uncommitted_and_pins_id() {
        let root = temp_root("load");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        // Generation 2 has shards but no manifest: a write in progress.
        let (_id2, dir2) = begin_generation(&root).unwrap();
        write_snapshot(&dir2, 7);
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 1);
        assert_eq!(snap.seed, 0);
        // Commit it: now it is the one served.
        commit_generation(&dir2, 2).unwrap();
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 2);
        assert_eq!(snap.seed, 7);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_falls_back_to_flat_layout() {
        let root = temp_root("flat");
        write_snapshot(&root, 3);
        let (id, snap) = load_latest_snapshot(&root, &request()).unwrap();
        assert_eq!(id, 0);
        assert_eq!(snap.seed, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_reports_empty_store() {
        let root = temp_root("empty");
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Empty { .. })
        ));
        // An uncommitted generation alone is still "nothing to serve".
        let (_, dir) = begin_generation(&root).unwrap();
        write_snapshot(&dir, 0);
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Empty { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_latest_surfaces_corruption_instead_of_falling_back() {
        let root = temp_root("corrupt");
        let (id1, dir1) = begin_generation(&root).unwrap();
        write_snapshot(&dir1, 0);
        commit_generation(&dir1, id1).unwrap();
        let (id2, dir2) = begin_generation(&root).unwrap();
        write_snapshot(&dir2, 1);
        commit_generation(&dir2, id2).unwrap();
        // Corrupt the newest generation's shard.
        let victim = dir2.join(crate::shard_file_name(0, 1));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            load_latest_snapshot(&root, &request()),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn manifest_mismatch_is_corrupt() {
        let root = temp_root("manifest");
        let (_, dir) = begin_generation(&root).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "not a manifest\n").unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        // A manifest naming the wrong id does not commit this directory.
        fs::write(dir.join(MANIFEST_FILE), format!("{MANIFEST_TAG} 99\n")).unwrap();
        assert!(latest_generation(&root).unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_keeps_newest_and_reports_removed() {
        let root = temp_root("gc");
        for mark in 0..5 {
            let (id, dir) = begin_generation(&root).unwrap();
            write_snapshot(&dir, mark);
            commit_generation(&dir, id).unwrap();
        }
        let removed = gc_generations(&root, 2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        let left: Vec<u64> = list_generations(&root)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(left, vec![4, 5]);
        // keep is clamped to 1: the latest always survives.
        let removed = gc_generations(&root, 0).unwrap();
        assert_eq!(removed, vec![4]);
        assert_eq!(latest_generation(&root).unwrap().unwrap().0, 5);
        // Ids keep increasing after GC (no reuse).
        let (id, _) = begin_generation(&root).unwrap();
        assert_eq!(id, 6);
        fs::remove_dir_all(&root).unwrap();
    }
}
