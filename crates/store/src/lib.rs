//! Versioned on-disk RR-sketch snapshots.
//!
//! OPIM-C's online/offline split observes that RR-set generation dominates
//! selection: sample once, then answer many selection queries against the
//! frozen sketch. This crate persists the per-machine RR-set shards a
//! DiIMM run produced (`dim sample`), so later processes (`dim im
//! --load-rr`, `dim serve`) can rebuild byte-identical coverage state
//! without resampling.
//!
//! # Shard file layout (all integers little-endian)
//!
//! ```text
//! magic           b"DIMR"
//! version         u32        (currently 1)
//! header_len      u32        (bytes in the header block)
//! header          header_len bytes — see [`ShardHeader`]
//! header_checksum u64        FNV-1a over the header block
//! body            elements section, then index section
//! body_checksum   u64        FNV-1a over the body
//! ```
//!
//! Header block: `fingerprint u64 · sampler u8 · seed u64 · theta u64 ·
//! shard_id u32 · shard_count u32 · num_sets u64 · num_elements u64 ·
//! edges_examined u64`. Each body section is `count u64 ·
//! offsets[count+1] u64 · pool u32[offsets[count]]` — the flat
//! [`PooledSets`] representation. The index section is the transpose of
//! the elements section over the set universe and is verified at load.
//!
//! Decoding untrusted bytes never panics: every length is bounds-checked
//! before allocation, both checksums must match, readers are strict
//! (trailing bytes are an error), and the rebuilt index is cross-checked
//! against the elements. Failures surface as typed [`StoreError`]s.

pub mod delta;
pub mod generation;

pub use delta::{
    decode_delta_shard, delta_base_of, delta_file_name, delta_paths, encode_delta_shard,
    read_delta_shard, write_delta_shard, DeltaShard, DeltaShardHeader, DELTA_EXTENSION,
    DELTA_MAGIC, DELTA_VERSION,
};
pub use generation::{
    begin_generation, commit_generation, compact_generation, gc_generations, generation_dir_name,
    latest_generation, list_generations, load_latest_chain, load_latest_snapshot,
    parse_generation_dir, read_graph_file, read_manifest, ChainInfo, GENERATION_PREFIX,
    GRAPH_FILE, MANIFEST_FILE,
};

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dim_cluster::ops::{put_u32, put_u64, Reader};
use dim_cluster::SamplerSpec;
use dim_coverage::PooledSets;
use dim_graph::Graph;

/// File magic for RR-sketch shard files.
pub const MAGIC: [u8; 4] = *b"DIMR";
/// Current snapshot format version.
pub const VERSION: u32 = 1;
/// Extension used by shard files inside a snapshot directory.
pub const SHARD_EXTENSION: &str = "rrs";
/// Upper bound on `header_len` accepted while decoding (the v1 header is
/// 49 bytes; the slack leaves room for forward-compatible extensions
/// without letting a corrupt length trigger a huge allocation).
const MAX_HEADER_LEN: usize = 4096;

/// Typed failures for snapshot persistence. Corrupt or mismatched bytes
/// always land here — never in a panic.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io { path: PathBuf, source: io::Error },
    /// The bytes do not decode as a valid shard file.
    Corrupt {
        path: Option<PathBuf>,
        detail: &'static str,
    },
    /// The shard decoded fine but does not match what the caller (or a
    /// sibling shard) requires — wrong graph, sampler, seed, …
    Mismatch {
        path: PathBuf,
        field: &'static str,
        expected: u64,
        found: u64,
    },
    /// The directory holds a partial snapshot: `shard_id` of
    /// `shard_count` is absent.
    MissingShard {
        dir: PathBuf,
        shard_id: u32,
        shard_count: u32,
    },
    /// The directory contains no shard files at all.
    Empty { dir: PathBuf },
    /// The store root holds generation directories but none is committed
    /// — every attempt is still being written or crashed before its
    /// manifest landed. `newest` names the newest uncommitted id so the
    /// operator can tell "writer still running" from "writer crashed".
    Uncommitted { dir: PathBuf, newest: u64 },
}

impl StoreError {
    fn corrupt(detail: &'static str) -> Self {
        StoreError::Corrupt { path: None, detail }
    }

    /// Attaches a file path to a path-less [`StoreError::Corrupt`].
    pub fn with_path(self, path: &Path) -> Self {
        match self {
            StoreError::Corrupt { path: None, detail } => StoreError::Corrupt {
                path: Some(path.to_path_buf()),
                detail,
            },
            other => other,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "snapshot I/O error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path: Some(p), detail } => {
                write!(f, "corrupt snapshot shard {}: {detail}", p.display())
            }
            StoreError::Corrupt { path: None, detail } => {
                write!(f, "corrupt snapshot shard: {detail}")
            }
            StoreError::Mismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "snapshot shard {} {field} mismatch: expected {expected}, found {found}",
                path.display()
            ),
            StoreError::MissingShard {
                dir,
                shard_id,
                shard_count,
            } => write!(
                f,
                "snapshot {} is missing shard {shard_id} of {shard_count}",
                dir.display()
            ),
            StoreError::Empty { dir } => {
                write!(f, "no snapshot shards (*.{SHARD_EXTENSION}) in {}", dir.display())
            }
            StoreError::Uncommitted { dir, newest } => write!(
                f,
                "no committed generation in {}: newest generation {newest} has no \
                 manifest (writer still running, or crashed before commit)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash — the format's checksum. Not cryptographic; it
/// guards against truncation and bit rot, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Hashes a writer's byte stream instead of storing it.
struct FnvWriter {
    hash: u64,
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Fingerprint of a graph: FNV-1a over its canonical "DIMG" binary
/// serialization. Ties a snapshot to the exact CSR it was sampled from —
/// same topology *and* same edge probabilities.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut w = FnvWriter {
        hash: 0xcbf2_9ce4_8422_2325,
    };
    dim_graph::binary::write_binary(graph, &mut w)
        .expect("in-memory serialization cannot fail");
    w.hash
}

/// Everything needed to decide whether a shard belongs to a given run:
/// provenance (graph, sampler, seed), the sampling state (θ), and the
/// shard's place in the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// [`graph_fingerprint`] of the sampled graph.
    pub fingerprint: u64,
    /// Which RR sampler produced the sets.
    pub sampler: SamplerSpec,
    /// Master seed of the sampling run.
    pub seed: u64,
    /// Global RR-set count θ across all shards.
    pub theta: u64,
    /// This shard's machine id, `0..shard_count`.
    pub shard_id: u32,
    /// Number of machines ℓ the snapshot was sampled on.
    pub shard_count: u32,
    /// Set-universe size (the graph's node count `n`).
    pub num_sets: u64,
    /// RR sets stored locally in this shard.
    pub num_elements: u64,
    /// Edges examined by this shard's sampler (for restored stats).
    pub edges_examined: u64,
}

impl ShardHeader {
    /// Serializes the header block (the bytes covered by
    /// `header_checksum`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(49);
        put_u64(&mut out, self.fingerprint);
        out.push(self.sampler.tag());
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.theta);
        put_u32(&mut out, self.shard_id);
        put_u32(&mut out, self.shard_count);
        put_u64(&mut out, self.num_sets);
        put_u64(&mut out, self.num_elements);
        put_u64(&mut out, self.edges_examined);
        out
    }

    /// Strictly decodes a header block.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader::new(bytes);
        let fingerprint = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let tag = r.u8().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let sampler = SamplerSpec::from_tag(tag)
            .ok_or_else(|| StoreError::corrupt("unknown sampler tag"))?;
        let seed = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let theta = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let shard_id = r.u32().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let shard_count = r.u32().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let num_sets = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let num_elements = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        let edges_examined = r.u64().ok_or_else(|| StoreError::corrupt("truncated header"))?;
        r.finish()
            .ok_or_else(|| StoreError::corrupt("trailing bytes in header"))?;
        if shard_count == 0 {
            return Err(StoreError::corrupt("shard_count is zero"));
        }
        if shard_id >= shard_count {
            return Err(StoreError::corrupt("shard_id out of range"));
        }
        Ok(ShardHeader {
            fingerprint,
            sampler,
            seed,
            theta,
            shard_id,
            shard_count,
            num_sets,
            num_elements,
            edges_examined,
        })
    }
}

/// One decoded shard: its header, the element records (RR set → node
/// ids), and the verified transpose index (node id → local RR-set ids).
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    pub header: ShardHeader,
    pub elements: PooledSets,
    pub index: PooledSets,
}

/// Appends one `PooledSets` section: `count u64 · offsets[count+1] u64 ·
/// pool u32[...]`.
fn put_sets(out: &mut Vec<u8>, sets: &PooledSets) {
    put_u64(out, sets.len() as u64);
    let mut offset = 0u64;
    put_u64(out, 0);
    for list in sets.iter() {
        offset += list.len() as u64;
        put_u64(out, offset);
    }
    for list in sets.iter() {
        for &v in list {
            put_u32(out, v);
        }
    }
}

/// Strictly parses one `PooledSets` section. `bound` is the length of the
/// buffer the reader was built over, used to reject absurd counts before
/// any allocation; `max_value` bounds the pool entries.
fn take_sets(r: &mut Reader<'_>, bound: usize, max_value: u64) -> Result<PooledSets, StoreError> {
    let count = r
        .u64()
        .ok_or_else(|| StoreError::corrupt("truncated section count"))? as usize;
    // `count + 1` offsets of 8 bytes each must fit in the buffer.
    if count >= bound / 8 {
        return Err(StoreError::corrupt("section count exceeds buffer"));
    }
    let mut offsets = Vec::with_capacity(count + 1);
    let mut prev = 0u64;
    for i in 0..=count {
        let o = r
            .u64()
            .ok_or_else(|| StoreError::corrupt("truncated section offsets"))?;
        if i == 0 && o != 0 {
            return Err(StoreError::corrupt("section offsets must start at zero"));
        }
        if o < prev {
            return Err(StoreError::corrupt("section offsets not monotone"));
        }
        prev = o;
        offsets.push(o as usize);
    }
    let pool_len = prev as usize;
    if pool_len
        .checked_mul(4)
        .map(|b| b > bound)
        .unwrap_or(true)
    {
        return Err(StoreError::corrupt("section pool exceeds buffer"));
    }
    let mut pool = Vec::with_capacity(pool_len);
    for _ in 0..pool_len {
        let v = r
            .u32()
            .ok_or_else(|| StoreError::corrupt("truncated section pool"))?;
        if (v as u64) >= max_value {
            return Err(StoreError::corrupt("section pool value out of range"));
        }
        pool.push(v);
    }
    // The checks above should make reassembly infallible, but these are
    // hostile bytes: route through the validating constructor so any gap
    // (e.g. a u64 offset overflowing the u32 arena bound) surfaces as
    // `Corrupt` instead of a panic.
    PooledSets::try_from_parts(offsets, pool)
        .map_err(|_| StoreError::corrupt("section offsets malformed"))
}

/// Serializes a shard file: header + elements + transpose index, both
/// blocks checksummed.
pub fn encode_shard(header: &ShardHeader, elements: &PooledSets, index: &PooledSets) -> Vec<u8> {
    let hdr = header.encode();
    let mut body = Vec::new();
    put_sets(&mut body, elements);
    put_sets(&mut body, index);
    let mut out = Vec::with_capacity(4 + 4 + 4 + hdr.len() + 8 + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, hdr.len() as u32);
    out.extend_from_slice(&hdr);
    put_u64(&mut out, fnv1a(&hdr));
    out.extend_from_slice(&body);
    put_u64(&mut out, fnv1a(&body));
    out
}

/// Decodes and fully validates a shard file from untrusted bytes.
pub fn decode_shard(bytes: &[u8]) -> Result<ShardSnapshot, StoreError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .take(4)
        .ok_or_else(|| StoreError::corrupt("truncated magic"))?;
    if magic != MAGIC {
        return Err(StoreError::corrupt("bad magic"));
    }
    let version = r
        .u32()
        .ok_or_else(|| StoreError::corrupt("truncated version"))?;
    if version != VERSION {
        return Err(StoreError::corrupt("unsupported format version"));
    }
    let header_len = r
        .u32()
        .ok_or_else(|| StoreError::corrupt("truncated header length"))? as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(StoreError::corrupt("header length out of range"));
    }
    let hdr = r
        .take(header_len)
        .ok_or_else(|| StoreError::corrupt("truncated header"))?;
    let header_checksum = r
        .u64()
        .ok_or_else(|| StoreError::corrupt("truncated header checksum"))?;
    if header_checksum != fnv1a(hdr) {
        return Err(StoreError::corrupt("header checksum mismatch"));
    }
    let header = ShardHeader::decode(hdr)?;
    // Everything between the header checksum and the final 8 bytes is the
    // checksummed body.
    let consumed = 4 + 4 + 4 + header_len + 8;
    if bytes.len() < consumed + 8 {
        return Err(StoreError::corrupt("truncated body"));
    }
    let body = &bytes[consumed..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if stored != fnv1a(body) {
        return Err(StoreError::corrupt("body checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let elements = take_sets(&mut r, body.len(), header.num_sets)?;
    let index = take_sets(&mut r, body.len(), header.num_elements)?;
    r.finish()
        .ok_or_else(|| StoreError::corrupt("trailing bytes in body"))?;
    if elements.len() as u64 != header.num_elements {
        return Err(StoreError::corrupt("element count disagrees with header"));
    }
    if index.len() as u64 != header.num_sets {
        return Err(StoreError::corrupt("index count disagrees with header"));
    }
    // The index must be exactly the transpose of the elements — a cheap
    // full-integrity check beyond the checksums, and the guarantee the
    // serving layer relies on.
    let expected = elements.transpose(header.num_sets as usize);
    if (0..index.len()).any(|i| index.get(i) != expected.get(i)) {
        return Err(StoreError::corrupt("index is not the transpose of elements"));
    }
    Ok(ShardSnapshot {
        header,
        elements,
        index,
    })
}

/// Canonical file name for shard `id` of `count` (e.g.
/// `shard-3-of-8.rrs`).
pub fn shard_file_name(id: u32, count: u32) -> String {
    format!("shard-{id}-of-{count}.{SHARD_EXTENSION}")
}

/// Writes one shard into `dir` (created if needed) under its canonical
/// name, building the transpose index from `elements`. The write is
/// atomic: bytes land in a temporary file first, then rename into place,
/// so a crashed writer leaves no half-written `.rrs` behind.
pub fn write_shard(
    dir: &Path,
    header: &ShardHeader,
    elements: &PooledSets,
) -> Result<PathBuf, StoreError> {
    fs::create_dir_all(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let index = elements.transpose(header.num_sets as usize);
    let bytes = encode_shard(header, elements, &index);
    let path = dir.join(shard_file_name(header.shard_id, header.shard_count));
    let tmp = dir.join(format!(
        ".{}.tmp",
        shard_file_name(header.shard_id, header.shard_count)
    ));
    fs::write(&tmp, &bytes).map_err(|source| StoreError::Io {
        path: tmp.clone(),
        source,
    })?;
    fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
        path: path.clone(),
        source,
    })?;
    Ok(path)
}

/// Reads and validates one shard file.
pub fn read_shard(path: &Path) -> Result<ShardSnapshot, StoreError> {
    let bytes = fs::read(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    decode_shard(&bytes).map_err(|e| e.with_path(path))
}

/// What a loader requires of a snapshot. Mismatches become typed
/// [`StoreError::Mismatch`]es instead of silently selecting seeds against
/// the wrong sketch.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotRequest {
    /// Required [`graph_fingerprint`].
    pub fingerprint: u64,
    /// Required sampler.
    pub sampler: SamplerSpec,
    /// Required shard count, if the caller cares (e.g. resuming onto a
    /// cluster of a fixed size). `None` accepts whatever the snapshot has.
    pub shard_count: Option<u32>,
}

/// A complete, validated snapshot: every shard present, mutually
/// consistent, and matching the request.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub fingerprint: u64,
    pub sampler: SamplerSpec,
    pub seed: u64,
    pub theta: u64,
    /// Set-universe size (graph node count `n`).
    pub num_sets: u64,
    pub shard_count: u32,
    /// Shards in `shard_id` order.
    pub shards: Vec<ShardSnapshot>,
    /// Σ edges examined across shards during the original sampling.
    pub edges_examined: u64,
}

impl Snapshot {
    /// Total RR sets stored across shards (equals `theta`).
    pub fn total_elements(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.header.num_elements)
            .sum()
    }

    /// Σ over all stored RR sets of their size.
    pub fn total_size(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.elements.total_size() as u64)
            .sum()
    }
}

/// Loads every `*.rrs` shard in `dir`, validates mutual consistency and
/// the request, and returns the assembled snapshot.
pub fn load_snapshot(dir: &Path, request: &SnapshotRequest) -> Result<Snapshot, StoreError> {
    let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.extension().map(|e| e == SHARD_EXTENSION).unwrap_or(false) {
            paths.push(path);
        }
    }
    if paths.is_empty() {
        return Err(StoreError::Empty {
            dir: dir.to_path_buf(),
        });
    }
    paths.sort();
    let mut shards: Vec<ShardSnapshot> = Vec::with_capacity(paths.len());
    for path in &paths {
        let shard = read_shard(path)?;
        let h = &shard.header;
        let mismatch = |field, expected, found| StoreError::Mismatch {
            path: path.clone(),
            field,
            expected,
            found,
        };
        if h.fingerprint != request.fingerprint {
            return Err(mismatch("fingerprint", request.fingerprint, h.fingerprint));
        }
        if h.sampler != request.sampler {
            return Err(mismatch(
                "sampler",
                request.sampler.tag() as u64,
                h.sampler.tag() as u64,
            ));
        }
        if let Some(expect) = request.shard_count {
            if h.shard_count != expect {
                return Err(mismatch("shard_count", expect as u64, h.shard_count as u64));
            }
        }
        if let Some(first) = shards.first() {
            let f = &first.header;
            if h.shard_count != f.shard_count {
                return Err(mismatch(
                    "shard_count",
                    f.shard_count as u64,
                    h.shard_count as u64,
                ));
            }
            if h.seed != f.seed {
                return Err(mismatch("seed", f.seed, h.seed));
            }
            if h.theta != f.theta {
                return Err(mismatch("theta", f.theta, h.theta));
            }
            if h.num_sets != f.num_sets {
                return Err(mismatch("num_sets", f.num_sets, h.num_sets));
            }
        }
        shards.push(shard);
    }
    let shard_count = shards[0].header.shard_count;
    let mut seen = vec![false; shard_count as usize];
    for (shard, path) in shards.iter().zip(&paths) {
        let id = shard.header.shard_id as usize;
        if seen[id] {
            return Err(StoreError::Corrupt {
                path: Some(path.clone()),
                detail: "duplicate shard id",
            });
        }
        seen[id] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(StoreError::MissingShard {
            dir: dir.to_path_buf(),
            shard_id: missing as u32,
            shard_count,
        });
    }
    shards.sort_by_key(|s| s.header.shard_id);
    let first = shards[0].header;
    let edges_examined: u64 = shards.iter().map(|s| s.header.edges_examined).sum();
    let total: u64 = shards.iter().map(|s| s.header.num_elements).sum();
    if total != first.theta {
        return Err(StoreError::Mismatch {
            path: dir.to_path_buf(),
            field: "theta",
            expected: first.theta,
            found: total,
        });
    }
    Ok(Snapshot {
        fingerprint: first.fingerprint,
        sampler: first.sampler,
        seed: first.seed,
        theta: first.theta,
        num_sets: first.num_sets,
        shard_count,
        shards,
        edges_examined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sample_sets() -> PooledSets {
        let mut p = PooledSets::new();
        p.push(&[0, 3]);
        p.push(&[]);
        p.push(&[2, 1, 3]);
        p.push(&[4]);
        p
    }

    fn sample_header(num_elements: u64) -> ShardHeader {
        ShardHeader {
            fingerprint: 0xdead_beef_cafe_f00d,
            sampler: SamplerSpec::Subsim,
            seed: 42,
            theta: 4,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements,
            edges_examined: 17,
        }
    }

    fn encode_sample() -> Vec<u8> {
        let elements = sample_sets();
        let index = elements.transpose(5);
        encode_shard(&sample_header(elements.len() as u64), &elements, &index)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dim-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header(4);
        assert_eq!(ShardHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_tag_and_range() {
        let mut bytes = sample_header(4).encode();
        bytes[8] = 99; // sampler tag
        assert!(matches!(
            ShardHeader::decode(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        let mut h = sample_header(4);
        h.shard_id = 3;
        h.shard_count = 2;
        assert!(ShardHeader::decode(&h.encode()).is_err());
        h.shard_count = 0;
        h.shard_id = 0;
        assert!(ShardHeader::decode(&h.encode()).is_err());
    }

    #[test]
    fn shard_roundtrip() {
        let bytes = encode_sample();
        let snap = decode_shard(&bytes).unwrap();
        assert_eq!(snap.header, sample_header(4));
        let elements = sample_sets();
        for i in 0..elements.len() {
            assert_eq!(snap.elements.get(i), elements.get(i));
        }
        let index = elements.transpose(5);
        for i in 0..5 {
            assert_eq!(snap.index.get(i), index.get(i));
        }
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode_sample();
        for len in 0..bytes.len() {
            assert!(
                decode_shard(&bytes[..len]).is_err(),
                "truncation to {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_errors() {
        let bytes = encode_sample();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            assert!(
                decode_shard(&mutated).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = encode_sample();
        bytes.push(0);
        assert!(decode_shard(&bytes).is_err());
    }

    #[test]
    fn mismatched_index_errors() {
        let elements = sample_sets();
        // Wrong index: transpose of something else entirely.
        let mut other = PooledSets::new();
        for _ in 0..elements.len() {
            other.push(&[0]);
        }
        let index = other.transpose(5);
        let bytes = encode_shard(&sample_header(elements.len() as u64), &elements, &index);
        match decode_shard(&bytes) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "index is not the transpose of elements")
            }
            other => panic!("expected corrupt index, got {other:?}"),
        }
    }

    #[test]
    fn absurd_count_rejected_before_allocation() {
        let bytes = encode_sample();
        let hdr_end = 4 + 4 + 4 + sample_header(4).encode().len() + 8;
        let mut mutated = bytes.clone();
        // Overwrite the elements-section count with u64::MAX and fix the
        // body checksum so the count check itself is what trips.
        mutated[hdr_end..hdr_end + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = mutated.len() - 8;
        let sum = fnv1a(&mutated[hdr_end..body_end]);
        mutated[body_end..].copy_from_slice(&sum.to_le_bytes());
        match decode_shard(&mutated) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "section count exceeds buffer")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_and_atomic_name() {
        let dir = temp_dir("roundtrip");
        let elements = sample_sets();
        let path = write_shard(&dir, &sample_header(elements.len() as u64), &elements).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "shard-0-of-1.rrs"
        );
        let snap = read_shard(&path).unwrap();
        assert_eq!(snap.header.num_elements, 4);
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .unwrap()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    fn write_pair(dir: &Path) {
        for id in 0..2u32 {
            let mut h = sample_header(2);
            h.shard_id = id;
            h.shard_count = 2;
            let mut elements = PooledSets::new();
            elements.push(&[id, 4]);
            elements.push(&[2]);
            write_shard(dir, &h, &elements).unwrap();
        }
    }

    fn request() -> SnapshotRequest {
        SnapshotRequest {
            fingerprint: 0xdead_beef_cafe_f00d,
            sampler: SamplerSpec::Subsim,
            shard_count: None,
        }
    }

    #[test]
    fn load_snapshot_assembles_all_shards() {
        let dir = temp_dir("load");
        write_pair(&dir);
        let snap = load_snapshot(&dir, &request()).unwrap();
        assert_eq!(snap.shard_count, 2);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.total_elements(), 4);
        assert_eq!(snap.theta, 4);
        assert_eq!(snap.edges_examined, 34);
        assert_eq!(snap.shards[0].header.shard_id, 0);
        assert_eq!(snap.shards[1].header.shard_id, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_snapshot_rejects_fingerprint_mismatch() {
        let dir = temp_dir("fp");
        write_pair(&dir);
        let mut req = request();
        req.fingerprint = 1;
        match load_snapshot(&dir, &req) {
            Err(StoreError::Mismatch { field, .. }) => assert_eq!(field, "fingerprint"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_snapshot_rejects_sampler_and_shard_count_mismatch() {
        let dir = temp_dir("sampler");
        write_pair(&dir);
        let mut req = request();
        req.sampler = SamplerSpec::StandardIc;
        match load_snapshot(&dir, &req) {
            Err(StoreError::Mismatch { field, .. }) => assert_eq!(field, "sampler"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        let mut req = request();
        req.shard_count = Some(4);
        match load_snapshot(&dir, &req) {
            Err(StoreError::Mismatch { field, .. }) => assert_eq!(field, "shard_count"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_snapshot_reports_missing_shard() {
        let dir = temp_dir("missing");
        write_pair(&dir);
        fs::remove_file(dir.join(shard_file_name(1, 2))).unwrap();
        match load_snapshot(&dir, &request()) {
            Err(StoreError::MissingShard {
                shard_id,
                shard_count,
                ..
            }) => {
                assert_eq!(shard_id, 1);
                assert_eq!(shard_count, 2);
            }
            other => panic!("expected missing shard, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_snapshot_reports_empty_dir() {
        let dir = temp_dir("empty");
        assert!(matches!(
            load_snapshot(&dir, &request()),
            Err(StoreError::Empty { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_snapshot_surfaces_on_disk_corruption() {
        let dir = temp_dir("corrupt");
        write_pair(&dir);
        let victim = dir.join(shard_file_name(0, 2));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        match load_snapshot(&dir, &request()) {
            Err(StoreError::Corrupt { path: Some(p), .. }) => assert_eq!(p, victim),
            other => panic!("expected corrupt with path, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_sensitive_to_graph_content() {
        use dim_graph::{GraphBuilder, WeightModel};
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        let g1 = b.build(WeightModel::WeightedCascade);
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.25);
        let g2 = b.build(WeightModel::WeightedCascade);
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g1));
    }
}
