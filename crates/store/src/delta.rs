//! Delta shards (`DIMD` files): incremental generations layered on the
//! versioned `DIMR` base format.
//!
//! A streamed generation does not re-serialize every RR set. Instead each
//! worker writes a *delta shard* recording (a) the edge batch that was
//! applied and (b) only the RR sets the batch invalidated, re-sampled on
//! the mutated graph. A committed generation is then *base shards + an
//! ordered delta chain*; [`crate::generation::load_latest_chain`] folds
//! the chain back into a full snapshot at load time, and
//! [`crate::generation::compact_generation`] folds it on disk into a new
//! base.
//!
//! # Delta file layout (all integers little-endian)
//!
//! ```text
//! magic           b"DIMD"
//! version         u32        (currently 1)
//! header_len      u32
//! header          header_len bytes — see [`DeltaShardHeader`]
//! header_checksum u64        FNV-1a over the header block
//! body            batch section, then repaired-record section
//! body_checksum   u64        FNV-1a over the body
//! ```
//!
//! Header block: `base_generation u64 · parent_fingerprint u64 ·
//! fingerprint u64 · sampler u8 · seed u64 · theta u64 · batch_seq u64 ·
//! shard_id u32 · shard_count u32 · num_sets u64 · num_elements u64 ·
//! repaired_count u64`. The body is `batch_len u32 · batch bytes` (the
//! canonical [`DeltaBatch`] encoding, whose `seq` must equal `batch_seq`)
//! followed by `repaired_count` records of `set_index u32 · len u32 ·
//! nodes u32[len]` with strictly increasing `set_index`.
//!
//! The fingerprint pair is the chain linkage: `parent_fingerprint` is the
//! graph the batch applied to, `fingerprint` the graph it produced. A
//! loader validates every link starting from the base's graph, so a delta
//! chain can never silently apply against the wrong sketch. As with
//! `DIMR`, decoding untrusted bytes never panics — every length is
//! bounds-checked before allocation and failures surface as typed
//! [`StoreError`]s.

use std::fs;
use std::path::{Path, PathBuf};

use dim_cluster::ops::{put_u32, put_u64, Reader};
use dim_cluster::SamplerSpec;
use dim_graph::DeltaBatch;

use crate::{fnv1a, StoreError};

/// File magic for delta shard files.
pub const DELTA_MAGIC: [u8; 4] = *b"DIMD";
/// Current delta format version.
pub const DELTA_VERSION: u32 = 1;
/// Extension used by delta shard files inside a generation directory.
pub const DELTA_EXTENSION: &str = "rrd";
/// Same forward-compatibility slack as the base format.
const MAX_HEADER_LEN: usize = 4096;

/// Provenance and chain linkage for one delta shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaShardHeader {
    /// Generation id of the `DIMR` base this chain extends.
    pub base_generation: u64,
    /// Fingerprint of the graph the batch applied to (the previous link's
    /// tip, or the base graph for the first delta).
    pub parent_fingerprint: u64,
    /// Fingerprint of the graph the batch produced.
    pub fingerprint: u64,
    /// Which RR sampler re-generated the repaired sets.
    pub sampler: SamplerSpec,
    /// Master seed of the sampling run (per-set streams derive from it).
    pub seed: u64,
    /// Global RR-set count θ across all shards (unchanged by repair).
    pub theta: u64,
    /// Position of the batch in the chain, 0-based from the base.
    pub batch_seq: u64,
    /// This shard's machine id, `0..shard_count`.
    pub shard_id: u32,
    /// Number of machines ℓ in the snapshot.
    pub shard_count: u32,
    /// Set-universe size (the graph's node count `n`).
    pub num_sets: u64,
    /// Total RR sets resident in this shard (for validation; unchanged by
    /// repair).
    pub num_elements: u64,
    /// Number of repaired records in the body.
    pub repaired_count: u64,
}

impl DeltaShardHeader {
    /// Serializes the header block (the bytes covered by
    /// `header_checksum`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(81);
        put_u64(&mut out, self.base_generation);
        put_u64(&mut out, self.parent_fingerprint);
        put_u64(&mut out, self.fingerprint);
        out.push(self.sampler.tag());
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.theta);
        put_u64(&mut out, self.batch_seq);
        put_u32(&mut out, self.shard_id);
        put_u32(&mut out, self.shard_count);
        put_u64(&mut out, self.num_sets);
        put_u64(&mut out, self.num_elements);
        put_u64(&mut out, self.repaired_count);
        out
    }

    /// Strictly decodes a header block.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let truncated = || StoreError::corrupt("truncated delta header");
        let mut r = Reader::new(bytes);
        let base_generation = r.u64().ok_or_else(truncated)?;
        let parent_fingerprint = r.u64().ok_or_else(truncated)?;
        let fingerprint = r.u64().ok_or_else(truncated)?;
        let tag = r.u8().ok_or_else(truncated)?;
        let sampler = SamplerSpec::from_tag(tag)
            .ok_or_else(|| StoreError::corrupt("unknown sampler tag"))?;
        let seed = r.u64().ok_or_else(truncated)?;
        let theta = r.u64().ok_or_else(truncated)?;
        let batch_seq = r.u64().ok_or_else(truncated)?;
        let shard_id = r.u32().ok_or_else(truncated)?;
        let shard_count = r.u32().ok_or_else(truncated)?;
        let num_sets = r.u64().ok_or_else(truncated)?;
        let num_elements = r.u64().ok_or_else(truncated)?;
        let repaired_count = r.u64().ok_or_else(truncated)?;
        r.finish()
            .ok_or_else(|| StoreError::corrupt("trailing bytes in delta header"))?;
        if shard_count == 0 {
            return Err(StoreError::corrupt("shard_count is zero"));
        }
        if shard_id >= shard_count {
            return Err(StoreError::corrupt("shard_id out of range"));
        }
        if repaired_count > num_elements {
            return Err(StoreError::corrupt("repaired_count exceeds num_elements"));
        }
        Ok(DeltaShardHeader {
            base_generation,
            parent_fingerprint,
            fingerprint,
            sampler,
            seed,
            theta,
            batch_seq,
            shard_id,
            shard_count,
            num_sets,
            num_elements,
            repaired_count,
        })
    }
}

/// One decoded delta shard: its header, the edge batch, and the repaired
/// RR-set records `(local set index, new member nodes)` in strictly
/// increasing index order.
#[derive(Clone, Debug)]
pub struct DeltaShard {
    pub header: DeltaShardHeader,
    pub batch: DeltaBatch,
    pub repaired: Vec<(u32, Vec<u32>)>,
}

/// Canonical file name for delta shard `id` of `count` (e.g.
/// `shard-3-of-8.rrd`).
pub fn delta_file_name(id: u32, count: u32) -> String {
    format!("shard-{id}-of-{count}.{DELTA_EXTENSION}")
}

/// Serializes a delta shard file: header + batch + repaired records, both
/// blocks checksummed. `repaired` must be sorted by strictly increasing
/// set index (the canonical order a repair pass naturally produces).
///
/// # Panics
/// Panics if `repaired` is unsorted or its length disagrees with the
/// header — programmer errors on the trusted write path, not data errors.
pub fn encode_delta_shard(
    header: &DeltaShardHeader,
    batch: &DeltaBatch,
    repaired: &[(u32, Vec<u32>)],
) -> Vec<u8> {
    assert_eq!(header.repaired_count as usize, repaired.len());
    assert_eq!(header.batch_seq, batch.seq);
    assert!(
        repaired.windows(2).all(|w| w[0].0 < w[1].0),
        "repaired records must be sorted by strictly increasing set index"
    );
    let hdr = header.encode();
    let mut body = Vec::new();
    let batch_bytes = batch.encode();
    put_u32(&mut body, batch_bytes.len() as u32);
    body.extend_from_slice(&batch_bytes);
    for (set_index, nodes) in repaired {
        put_u32(&mut body, *set_index);
        put_u32(&mut body, nodes.len() as u32);
        for &v in nodes {
            put_u32(&mut body, v);
        }
    }
    let mut out = Vec::with_capacity(4 + 4 + 4 + hdr.len() + 8 + body.len() + 8);
    out.extend_from_slice(&DELTA_MAGIC);
    put_u32(&mut out, DELTA_VERSION);
    put_u32(&mut out, hdr.len() as u32);
    out.extend_from_slice(&hdr);
    put_u64(&mut out, fnv1a(&hdr));
    out.extend_from_slice(&body);
    put_u64(&mut out, fnv1a(&body));
    out
}

/// Decodes and fully validates a delta shard file from untrusted bytes.
pub fn decode_delta_shard(bytes: &[u8]) -> Result<DeltaShard, StoreError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .take(4)
        .ok_or_else(|| StoreError::corrupt("truncated magic"))?;
    if magic != DELTA_MAGIC {
        return Err(StoreError::corrupt("bad delta magic"));
    }
    let version = r
        .u32()
        .ok_or_else(|| StoreError::corrupt("truncated version"))?;
    if version != DELTA_VERSION {
        return Err(StoreError::corrupt("unsupported delta format version"));
    }
    let header_len = r
        .u32()
        .ok_or_else(|| StoreError::corrupt("truncated header length"))? as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(StoreError::corrupt("header length out of range"));
    }
    let hdr = r
        .take(header_len)
        .ok_or_else(|| StoreError::corrupt("truncated delta header"))?;
    let header_checksum = r
        .u64()
        .ok_or_else(|| StoreError::corrupt("truncated header checksum"))?;
    if header_checksum != fnv1a(hdr) {
        return Err(StoreError::corrupt("header checksum mismatch"));
    }
    let header = DeltaShardHeader::decode(hdr)?;
    let consumed = 4 + 4 + 4 + header_len + 8;
    if bytes.len() < consumed + 8 {
        return Err(StoreError::corrupt("truncated delta body"));
    }
    let body = &bytes[consumed..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if stored != fnv1a(body) {
        return Err(StoreError::corrupt("body checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let batch_len = r
        .u32()
        .ok_or_else(|| StoreError::corrupt("truncated batch length"))? as usize;
    if batch_len > r.remaining() {
        return Err(StoreError::corrupt("batch length exceeds body"));
    }
    let batch_bytes = r
        .take(batch_len)
        .ok_or_else(|| StoreError::corrupt("truncated batch"))?;
    let batch = DeltaBatch::decode(batch_bytes)
        .map_err(|_| StoreError::corrupt("malformed edge batch"))?;
    if batch.seq != header.batch_seq {
        return Err(StoreError::corrupt("batch seq disagrees with header"));
    }
    let count = header.repaired_count as usize;
    // Each record is at least 8 bytes; bound allocation by the body.
    if count > r.remaining() / 8 {
        return Err(StoreError::corrupt("repaired count exceeds body"));
    }
    let mut repaired = Vec::with_capacity(count);
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let set_index = r
            .u32()
            .ok_or_else(|| StoreError::corrupt("truncated repaired record"))?;
        if header.num_elements <= set_index as u64 {
            return Err(StoreError::corrupt("repaired set index out of range"));
        }
        if prev.is_some_and(|p| p >= set_index) {
            return Err(StoreError::corrupt("repaired records not sorted"));
        }
        prev = Some(set_index);
        let len = r
            .u32()
            .ok_or_else(|| StoreError::corrupt("truncated repaired record"))? as usize;
        if len > r.remaining() / 4 {
            return Err(StoreError::corrupt("repaired record exceeds body"));
        }
        let mut nodes = Vec::with_capacity(len);
        for _ in 0..len {
            let v = r
                .u32()
                .ok_or_else(|| StoreError::corrupt("truncated repaired record"))?;
            if header.num_sets <= v as u64 {
                return Err(StoreError::corrupt("repaired node out of range"));
            }
            nodes.push(v);
        }
        repaired.push((set_index, nodes));
    }
    r.finish()
        .ok_or_else(|| StoreError::corrupt("trailing bytes in delta body"))?;
    Ok(DeltaShard {
        header,
        batch,
        repaired,
    })
}

/// Writes one delta shard into `dir` (created if needed) under its
/// canonical name, atomically (tmp file + rename) like
/// [`crate::write_shard`].
pub fn write_delta_shard(
    dir: &Path,
    header: &DeltaShardHeader,
    batch: &DeltaBatch,
    repaired: &[(u32, Vec<u32>)],
) -> Result<PathBuf, StoreError> {
    fs::create_dir_all(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let bytes = encode_delta_shard(header, batch, repaired);
    let name = delta_file_name(header.shard_id, header.shard_count);
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{name}.tmp"));
    fs::write(&tmp, &bytes).map_err(|source| StoreError::Io {
        path: tmp.clone(),
        source,
    })?;
    fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
        path: path.clone(),
        source,
    })?;
    Ok(path)
}

/// Reads and validates one delta shard file.
pub fn read_delta_shard(path: &Path) -> Result<DeltaShard, StoreError> {
    let bytes = fs::read(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    decode_delta_shard(&bytes).map_err(|e| e.with_path(path))
}

/// All `*.rrd` files in a generation directory, sorted by name. Empty for
/// a base (`DIMR`) generation.
pub fn delta_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path
            .extension()
            .map(|e| e == DELTA_EXTENSION)
            .unwrap_or(false)
        {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

/// Reads the base-generation link from a delta generation directory (the
/// first `*.rrd` file's header), or `None` when the directory holds no
/// delta shards. Chain-aware GC uses this to keep transitively referenced
/// bases alive.
pub fn delta_base_of(dir: &Path) -> Result<Option<u64>, StoreError> {
    match delta_paths(dir)?.first() {
        Some(path) => Ok(Some(read_delta_shard(path)?.header.base_generation)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::EdgeOp;

    fn sample_batch() -> DeltaBatch {
        DeltaBatch::new(
            2,
            vec![
                EdgeOp::Insert { u: 0, v: 3, p: 0.5 },
                EdgeOp::Delete { u: 1, v: 2 },
            ],
        )
    }

    fn sample_header() -> DeltaShardHeader {
        DeltaShardHeader {
            base_generation: 4,
            parent_fingerprint: 0x1111_2222_3333_4444,
            fingerprint: 0x5555_6666_7777_8888,
            sampler: SamplerSpec::Subsim,
            seed: 42,
            theta: 10,
            batch_seq: 2,
            shard_id: 1,
            shard_count: 2,
            num_sets: 5,
            num_elements: 6,
            repaired_count: 2,
        }
    }

    fn sample_repaired() -> Vec<(u32, Vec<u32>)> {
        vec![(1, vec![3, 0]), (4, vec![2])]
    }

    fn encode_sample() -> Vec<u8> {
        encode_delta_shard(&sample_header(), &sample_batch(), &sample_repaired())
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        assert_eq!(DeltaShardHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn shard_roundtrip() {
        let shard = decode_delta_shard(&encode_sample()).unwrap();
        assert_eq!(shard.header, sample_header());
        assert_eq!(shard.batch, sample_batch());
        assert_eq!(shard.repaired, sample_repaired());
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode_sample();
        for len in 0..bytes.len() {
            assert!(
                decode_delta_shard(&bytes[..len]).is_err(),
                "truncation to {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_errors() {
        let bytes = encode_sample();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            assert!(
                decode_delta_shard(&mutated).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = encode_sample();
        bytes.push(0);
        assert!(decode_delta_shard(&bytes).is_err());
    }

    fn refix_body_checksum(bytes: &mut [u8]) {
        let hdr_len = sample_header().encode().len();
        let body_start = 4 + 4 + 4 + hdr_len + 8;
        let body_end = bytes.len() - 8;
        let sum = fnv1a(&bytes[body_start..body_end]);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // Batch length far beyond the body, checksum refixed so the length
        // check itself is what trips — no allocation, no panic.
        let mut bytes = encode_sample();
        let hdr_len = sample_header().encode().len();
        let body_start = 4 + 4 + 4 + hdr_len + 8;
        bytes[body_start..body_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        refix_body_checksum(&mut bytes);
        match decode_delta_shard(&bytes) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "batch length exceeds body")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_or_out_of_range_repairs_rejected() {
        let h = sample_header();
        // Out-of-range set index (num_elements is 6).
        let mut bad = DeltaShardHeader {
            repaired_count: 1,
            ..h
        };
        let bytes = encode_delta_shard(&bad, &sample_batch(), &[(5, vec![0])]);
        assert!(decode_delta_shard(&bytes).is_ok());
        let bytes = encode_delta_shard(&bad, &sample_batch(), &[(4, vec![9])]);
        match decode_delta_shard(&bytes) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "repaired node out of range")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        bad.repaired_count = 7;
        assert!(DeltaShardHeader::decode(&bad.encode()).is_err());
    }

    #[test]
    fn batch_seq_must_match_header() {
        let mut h = sample_header();
        h.batch_seq = 3;
        // encode asserts on the trusted path, so build the mismatch by
        // hand: encode with a matching header, then bump the header field
        // and refix checksums.
        let batch = DeltaBatch::new(3, sample_batch().ops);
        let bytes = encode_delta_shard(&h, &batch, &sample_repaired());
        assert!(decode_delta_shard(&bytes).is_ok());
        let wrong = DeltaBatch::new(9, sample_batch().ops);
        let mut forged = encode_delta_shard(
            &DeltaShardHeader {
                batch_seq: 9,
                ..h
            },
            &wrong,
            &sample_repaired(),
        );
        // Splice the original (seq 3) header back in with its checksum.
        let hdr = h.encode();
        forged[12..12 + hdr.len()].copy_from_slice(&hdr);
        let sum = fnv1a(&hdr);
        forged[12 + hdr.len()..12 + hdr.len() + 8].copy_from_slice(&sum.to_le_bytes());
        match decode_delta_shard(&forged) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert_eq!(detail, "batch seq disagrees with header")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_and_base_link() {
        let dir = std::env::temp_dir().join(format!(
            "dim-store-delta-{}-{}",
            std::process::id(),
            line!()
        ));
        let path =
            write_delta_shard(&dir, &sample_header(), &sample_batch(), &sample_repaired())
                .unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "shard-1-of-2.rrd"
        );
        let shard = read_delta_shard(&path).unwrap();
        assert_eq!(shard.header, sample_header());
        assert_eq!(delta_base_of(&dir).unwrap(), Some(4));
        // No temp files left behind.
        assert!(fs::read_dir(&dir)
            .unwrap()
            .all(|e| !e.unwrap().file_name().to_str().unwrap().ends_with(".tmp")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_base_of_none_for_base_generation() {
        let dir = std::env::temp_dir().join(format!(
            "dim-store-delta-none-{}-{}",
            std::process::id(),
            line!()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(delta_base_of(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
