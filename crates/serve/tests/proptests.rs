//! Property-based tests for the query protocol codecs.
//!
//! The encodings are canonical (one byte string per message), so beyond
//! roundtripping we can assert the strong form of corruption detection:
//! a mutated body either fails to decode or decodes to a *different*
//! message — it can never impersonate the original.

use dim_serve::proto::{
    QueryRequest, QueryResponse, SketchStats, RESP_ERROR, RESP_SPREAD, RESP_STATS, RESP_TOP_K,
};
use proptest::prelude::*;

fn any_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..40)
}

fn any_request() -> impl Strategy<Value = QueryRequest> {
    prop_oneof![
        any_ids().prop_map(|seeds| QueryRequest::Spread { seeds }),
        (any::<u32>(), any_ids(), any_ids()).prop_map(|(k, include, exclude)| {
            QueryRequest::TopK {
                k,
                include,
                exclude,
            }
        }),
        Just(QueryRequest::Stats),
    ]
}

fn any_response() -> impl Strategy<Value = QueryResponse> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(covered, theta, num_nodes)| {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            }
        }),
        (
            prop::collection::vec((any::<u32>(), any::<u64>()), 0..30),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(pairs, covered, theta, num_nodes)| {
                let (seeds, marginals) = pairs.into_iter().unzip();
                QueryResponse::TopK {
                    seeds,
                    marginals,
                    covered,
                    theta,
                    num_nodes,
                }
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(num_nodes, theta, shard_count, total_rr_size, queries_answered)| {
                QueryResponse::Stats(SketchStats {
                    num_nodes,
                    theta,
                    shard_count,
                    total_rr_size,
                    queries_answered,
                })
            }),
        (any::<u8>(), "[ -~]{0,60}").prop_map(|(code, message)| {
            QueryResponse::Error { code, message }
        }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in any_request()) {
        let body = req.encode();
        prop_assert_eq!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    #[test]
    fn response_roundtrip(resp in any_response()) {
        let body = resp.encode();
        prop_assert_eq!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn request_truncation_detected(req in any_request()) {
        let body = req.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(QueryRequest::decode(req.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn response_truncation_detected(resp in any_response()) {
        let body = resp.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(QueryResponse::decode(resp.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn request_mutation_never_impersonates(
        req in any_request(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut body = req.encode();
        if body.is_empty() {
            return Ok(());
        }
        let i = byte.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_ne!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    #[test]
    fn response_mutation_never_impersonates(
        resp in any_response(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut body = resp.encode();
        if body.is_empty() {
            return Ok(());
        }
        let i = byte.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_ne!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        opcode in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = QueryRequest::decode(opcode, &body);
        let _ = QueryResponse::decode(opcode, &body);
    }

    #[test]
    fn response_opcodes_are_disjoint_from_requests(resp in any_response()) {
        // A reply frame can never decode as a request, so a confused peer
        // fails loudly instead of executing a ghost query.
        let body = resp.encode();
        prop_assert!(matches!(
            resp.opcode(),
            RESP_SPREAD | RESP_TOP_K | RESP_STATS | RESP_ERROR
        ));
        prop_assert_eq!(QueryRequest::decode(resp.opcode(), &body), None);
    }
}
