//! Property-based tests for the query protocol codecs.
//!
//! The encodings are canonical (one byte string per message), so beyond
//! roundtripping we can assert the strong form of corruption detection:
//! a mutated body either fails to decode or decodes to a *different*
//! message — it can never impersonate the original. Batch frames get the
//! same treatment: roundtrip in order, truncation always detected, and
//! admin/nested entries always rejected.

use dim_serve::proto::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch, QueryRequest,
    QueryResponse, SketchStats, REQ_AUTH, REQ_BATCH, REQ_RELOAD, RESP_AUTH, RESP_BATCH,
    RESP_ERROR, RESP_RELOAD, RESP_SPREAD, RESP_STATS, RESP_TOP_K,
};
use proptest::prelude::*;

fn any_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..40)
}

/// Tenant ids within the wire cap (`MAX_TENANT_ID_LEN`), including empty.
fn any_tenant_id() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{0,40}"
}

fn any_digest() -> impl Strategy<Value = [u8; 32]> {
    any::<[u8; 32]>()
}

fn any_request() -> impl Strategy<Value = QueryRequest> {
    prop_oneof![
        any_ids().prop_map(|seeds| QueryRequest::Spread { seeds }),
        (any::<u32>(), any_ids(), any_ids()).prop_map(|(k, include, exclude)| {
            QueryRequest::TopK {
                k,
                include,
                exclude,
            }
        }),
        Just(QueryRequest::Stats),
        Just(QueryRequest::Reload),
        (any::<u8>(), any_tenant_id(), any_digest()).prop_map(|(version, tenant, auth)| {
            QueryRequest::Auth {
                version,
                tenant,
                auth,
            }
        }),
    ]
}

/// Requests allowed inside a batch (everything except admin/session ops).
fn any_batchable_request() -> impl Strategy<Value = QueryRequest> {
    any_request().prop_filter("batches carry read-only queries", |r| {
        !matches!(r, QueryRequest::Reload | QueryRequest::Auth { .. })
    })
}

fn any_response() -> impl Strategy<Value = QueryResponse> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(covered, theta, num_nodes)| {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            }
        }),
        (
            prop::collection::vec((any::<u32>(), any::<u64>()), 0..30),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(pairs, covered, theta, num_nodes)| {
                let (seeds, marginals) = pairs.into_iter().unzip();
                QueryResponse::TopK {
                    seeds,
                    marginals,
                    covered,
                    theta,
                    num_nodes,
                }
            }),
        (
            (
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
            ),
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
            ),
        )
            .prop_map(|(shape, serving)| {
                let (num_nodes, theta, shard_count, total_rr_size, queries_answered) = shape;
                let (generation, shed, quota_shed, p50_us, p95_us, p99_us) = serving;
                QueryResponse::Stats(SketchStats {
                    num_nodes,
                    theta,
                    shard_count,
                    total_rr_size,
                    queries_answered,
                    generation,
                    shed,
                    quota_shed,
                    p50_us,
                    p95_us,
                    p99_us,
                })
            }),
        (any::<u64>(), any::<bool>()).prop_map(|(generation, changed)| {
            QueryResponse::Reload {
                generation,
                changed,
            }
        }),
        (any_tenant_id(), any::<u64>()).prop_map(|(tenant, generation)| {
            QueryResponse::AuthOk { tenant, generation }
        }),
        (any::<u8>(), "[ -~]{0,60}").prop_map(|(code, message)| {
            QueryResponse::Error { code, message }
        }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in any_request()) {
        let body = req.encode();
        prop_assert_eq!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    #[test]
    fn response_roundtrip(resp in any_response()) {
        let body = resp.encode();
        prop_assert_eq!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn request_truncation_detected(req in any_request()) {
        let body = req.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(QueryRequest::decode(req.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn response_truncation_detected(resp in any_response()) {
        let body = resp.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(QueryResponse::decode(resp.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn request_mutation_never_impersonates(
        req in any_request(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut body = req.encode();
        if body.is_empty() {
            return Ok(());
        }
        let i = byte.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_ne!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    #[test]
    fn response_mutation_never_impersonates(
        resp in any_response(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut body = resp.encode();
        if body.is_empty() {
            return Ok(());
        }
        let i = byte.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_ne!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        opcode in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = QueryRequest::decode(opcode, &body);
        let _ = QueryResponse::decode(opcode, &body);
        let _ = decode_batch(&body);
        let _ = decode_response_batch(&body);
    }

    #[test]
    fn response_opcodes_are_disjoint_from_requests(resp in any_response()) {
        // A reply frame can never decode as a request, so a confused peer
        // fails loudly instead of executing a ghost query.
        let body = resp.encode();
        prop_assert!(matches!(
            resp.opcode(),
            RESP_SPREAD | RESP_TOP_K | RESP_STATS | RESP_RELOAD | RESP_AUTH | RESP_ERROR
        ));
        prop_assert_eq!(QueryRequest::decode(resp.opcode(), &body), None);
    }

    #[test]
    fn batch_roundtrip_preserves_order(
        reqs in prop::collection::vec(any_batchable_request(), 0..12),
    ) {
        let body = encode_batch(&reqs);
        prop_assert_eq!(decode_batch(&body), Some(reqs));
    }

    #[test]
    fn response_batch_roundtrip_preserves_order(
        resps in prop::collection::vec(any_response(), 0..12),
    ) {
        let body = encode_response_batch(&resps);
        prop_assert_eq!(decode_response_batch(&body), Some(resps));
    }

    #[test]
    fn batch_truncation_detected(
        reqs in prop::collection::vec(any_batchable_request(), 1..8),
    ) {
        let body = encode_batch(&reqs);
        for cut in 0..body.len() {
            prop_assert_eq!(decode_batch(&body[..cut]), None);
        }
    }

    #[test]
    fn batch_mutation_never_impersonates(
        reqs in prop::collection::vec(any_batchable_request(), 1..8),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut body = encode_batch(&reqs);
        let i = byte.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_ne!(decode_batch(&body), Some(reqs));
    }

    #[test]
    fn batch_rejects_admin_and_nested_entries(
        reqs in prop::collection::vec(any_batchable_request(), 0..6),
        evil_opcode in prop_oneof![Just(REQ_BATCH), Just(REQ_RELOAD), Just(REQ_AUTH)],
        position in any::<prop::sample::Index>(),
    ) {
        // Splice a forbidden (but individually well-formed) entry into an
        // otherwise valid batch: the whole frame must be rejected.
        let mut entries: Vec<(u8, Vec<u8>)> = reqs
            .iter()
            .map(|r| (r.opcode(), r.encode()))
            .collect();
        let evil_body = if evil_opcode == REQ_BATCH {
            encode_batch(&[])
        } else if evil_opcode == REQ_AUTH {
            QueryRequest::Auth {
                version: 1,
                tenant: "sneaky".to_string(),
                auth: [7u8; 32],
            }
            .encode()
        } else {
            Vec::new()
        };
        entries.insert(position.index(entries.len() + 1), (evil_opcode, evil_body));
        let mut body = Vec::new();
        dim_cluster::ops::put_u32(&mut body, entries.len() as u32);
        for (op, entry) in &entries {
            body.push(*op);
            dim_cluster::ops::put_u32(&mut body, entry.len() as u32);
            body.extend_from_slice(entry);
        }
        prop_assert_eq!(decode_batch(&body), None);
    }

    #[test]
    fn response_batch_rejects_auth_entries(
        resps in prop::collection::vec(any_response(), 0..6),
        position in any::<prop::sample::Index>(),
    ) {
        // An AuthOk spliced into a reply batch (well-formed on its own)
        // must poison the whole frame — session-scope replies never ride
        // inside a batch.
        let evil = QueryResponse::AuthOk {
            tenant: "sneaky".to_string(),
            generation: 3,
        };
        let mut entries: Vec<(u8, Vec<u8>)> = resps
            .iter()
            .map(|r| (r.opcode(), r.encode()))
            .collect();
        entries.insert(position.index(entries.len() + 1), (evil.opcode(), evil.encode()));
        let mut body = Vec::new();
        dim_cluster::ops::put_u32(&mut body, entries.len() as u32);
        for (op, entry) in &entries {
            body.push(*op);
            dim_cluster::ops::put_u32(&mut body, entry.len() as u32);
            body.extend_from_slice(entry);
        }
        prop_assert_eq!(decode_response_batch(&body), None);
    }
}
