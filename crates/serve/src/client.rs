//! A blocking client for the query protocol — the substrate of
//! `dim query` and of tests.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use dim_cluster::wire::{protocol_err, read_frame, write_frame};

use crate::proto::{spread_estimate, QueryRequest, QueryResponse, SketchStats};

/// A constrained top-k reply, with the spread estimate precomputed.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResult {
    /// Selected seeds, in selection order (forced includes first).
    pub seeds: Vec<u32>,
    /// Marginal coverage of each seed at its application point.
    pub marginals: Vec<u64>,
    /// RR sets covered by the full seed set.
    pub covered: u64,
    /// Estimated influence spread `n · covered / θ`.
    pub spread: f64,
}

/// One connection to a [`crate::Server`]. Requests are answered in order
/// over a single stream; open one client per thread for parallel load.
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<QueryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QueryClient { stream })
    }

    /// Sends one request and decodes the reply. A server-side
    /// [`QueryResponse::Error`] comes back as `Ok(Error { .. })`; wire
    /// failures and undecodable replies are `Err`.
    pub fn request(&mut self, req: &QueryRequest) -> io::Result<QueryResponse> {
        write_frame(&mut self.stream, req.opcode(), &req.encode())?;
        let (opcode, body) = read_frame(&mut self.stream)?;
        QueryResponse::decode(opcode, &body)
            .ok_or_else(|| protocol_err(&format!("malformed response (opcode {opcode:#04x})")))
    }

    fn expect(&mut self, req: &QueryRequest) -> io::Result<QueryResponse> {
        match self.request(req)? {
            QueryResponse::Error { code, message } => {
                Err(protocol_err(&format!("server error {code}: {message}")))
            }
            resp => Ok(resp),
        }
    }

    /// Coverage and estimated spread of an arbitrary seed set.
    pub fn spread(&mut self, seeds: &[u32]) -> io::Result<(u64, f64)> {
        match self.expect(&QueryRequest::Spread {
            seeds: seeds.to_vec(),
        })? {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            } => Ok((covered, spread_estimate(covered, theta, num_nodes))),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Constrained top-k selection (see
    /// [`dim_coverage::constrained_greedy`] for the semantics).
    pub fn top_k(&mut self, k: u32, include: &[u32], exclude: &[u32]) -> io::Result<TopKResult> {
        match self.expect(&QueryRequest::TopK {
            k,
            include: include.to_vec(),
            exclude: exclude.to_vec(),
        })? {
            QueryResponse::TopK {
                seeds,
                marginals,
                covered,
                theta,
                num_nodes,
            } => Ok(TopKResult {
                seeds,
                marginals,
                covered,
                spread: spread_estimate(covered, theta, num_nodes),
            }),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Sketch statistics — also the health check.
    pub fn stats(&mut self) -> io::Result<SketchStats> {
        match self.expect(&QueryRequest::Stats)? {
            QueryResponse::Stats(s) => Ok(s),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }
}
