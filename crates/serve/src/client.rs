//! A blocking client for the query protocol — the substrate of
//! `dim query`, `dim-loadgen`, and of tests.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use dim_cluster::wire::{protocol_err, read_frame, write_frame};

use crate::auth::Credentials;
use crate::proto::{
    decode_response_batch, encode_batch, spread_estimate, QueryRequest, QueryResponse,
    SketchStats, REQ_BATCH, RESP_BATCH,
};

/// A constrained top-k reply, with the spread estimate precomputed.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResult {
    /// Selected seeds, in selection order (forced includes first).
    pub seeds: Vec<u32>,
    /// Marginal coverage of each seed at its application point.
    pub marginals: Vec<u64>,
    /// RR sets covered by the full seed set.
    pub covered: u64,
    /// Estimated influence spread `n · covered / θ`.
    pub spread: f64,
}

/// Retry policy for [`QueryClient::connect_with`]: keep attempting until
/// `deadline` elapses, sleeping a jittered exponential backoff between
/// attempts — the same shape as the cluster rendezvous join path, so a
/// client riding out a server restart behaves like a (re)joining worker.
/// With `credentials` set, every successful connect authenticates before
/// the client is handed back, so callers never see a half-open tenant
/// connection.
#[derive(Clone, Debug)]
pub struct ConnectOptions {
    /// Total time to keep retrying before giving up.
    pub deadline: Duration,
    /// First backoff delay; doubles per failed attempt up to
    /// [`ConnectOptions::max_delay`].
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed for the jitter stream (vary per client to avoid thundering
    /// herds).
    pub jitter_seed: u64,
    /// Tenant credentials for a multi-tenant server; `None` for
    /// single-tenant servers (no AUTH handshake).
    pub credentials: Option<Credentials>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            deadline: Duration::from_secs(10),
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x51ce_5eed,
            credentials: None,
        }
    }
}

/// Jittered exponential backoff, mirroring
/// `dim_cluster::rendezvous::Backoff` (which sits behind the
/// `proc-backend` feature and cannot be imported here): each delay is
/// drawn uniformly from `[base/2, base]`, then the base doubles, capped.
struct Backoff {
    base: Duration,
    cap: Duration,
    rng_state: u64,
}

impl Backoff {
    fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            rng_state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn splitmix64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_delay(&mut self) -> Duration {
        let base_ns = self.base.as_nanos() as u64;
        let jittered = base_ns / 2 + self.splitmix64() % (base_ns / 2 + 1);
        self.base = (self.base * 2).min(self.cap);
        Duration::from_nanos(jittered)
    }
}

/// One connection to a [`crate::Server`]. Requests are answered in order
/// over a single stream; open one client per thread for parallel load.
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connects to a running server (single attempt). Use
    /// [`QueryClient::connect_with`] to ride out a restarting server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<QueryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QueryClient { stream })
    }

    /// Connects with retries: failed attempts back off with jitter until
    /// `options.deadline` elapses, then the last error is returned. A
    /// load-shed server accepts and then closes — that surfaces as an
    /// error on first use, not here, so shed clients don't hammer the
    /// accept queue.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: &ConnectOptions,
    ) -> io::Result<QueryClient> {
        // Resolve once: per-attempt resolution would charge DNS latency
        // against the retry budget.
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let deadline = Instant::now() + options.deadline;
        let mut backoff = Backoff::new(options.base_delay, options.max_delay, options.jitter_seed);
        loop {
            let attempt = QueryClient::connect(&addrs[..]).and_then(|mut client| {
                if let Some(creds) = &options.credentials {
                    client.authenticate(creds)?;
                }
                Ok(client)
            });
            match attempt {
                Ok(client) => return Ok(client),
                // A typed rejection (wrong token, unknown tenant,
                // protocol mismatch) will not heal with time — fail now
                // instead of hammering the server until the deadline.
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                Err(e) => {
                    let delay = backoff.next_delay();
                    let now = Instant::now();
                    if now + delay >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Authenticates this connection as a tenant (the first frame on a
    /// connection to a multi-tenant server). Returns the generation the
    /// connection will query. Typed server rejections (wrong token,
    /// unknown tenant) surface as errors carrying the server's message.
    pub fn authenticate(&mut self, credentials: &Credentials) -> io::Result<u64> {
        match self.expect(&credentials.auth_request())? {
            QueryResponse::AuthOk { tenant, generation } => {
                if tenant != credentials.tenant {
                    return Err(protocol_err(&format!(
                        "server scoped us to tenant {tenant:?}, asked for {:?}",
                        credentials.tenant
                    )));
                }
                Ok(generation)
            }
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends one request and decodes the reply. A server-side
    /// [`QueryResponse::Error`] comes back as `Ok(Error { .. })`; wire
    /// failures and undecodable replies are `Err`.
    pub fn request(&mut self, req: &QueryRequest) -> io::Result<QueryResponse> {
        write_frame(&mut self.stream, req.opcode(), &req.encode())?;
        let (opcode, body) = read_frame(&mut self.stream)?;
        QueryResponse::decode(opcode, &body)
            .ok_or_else(|| protocol_err(&format!("malformed response (opcode {opcode:#04x})")))
    }

    fn expect(&mut self, req: &QueryRequest) -> io::Result<QueryResponse> {
        match self.request(req)? {
            QueryResponse::Error { code, message } => {
                Err(protocol_err(&format!("server error {code}: {message}")))
            }
            resp => Ok(resp),
        }
    }

    /// Sends a pipelined batch in one frame and returns the replies in
    /// request order. Per-query failures come back as
    /// [`QueryResponse::Error`] entries; only wire-level failures are
    /// `Err`. Empty input short-circuits without touching the wire.
    pub fn batch(&mut self, requests: &[QueryRequest]) -> io::Result<Vec<QueryResponse>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        write_frame(&mut self.stream, REQ_BATCH, &encode_batch(requests))?;
        let (opcode, body) = read_frame(&mut self.stream)?;
        if opcode != RESP_BATCH {
            // A batch-level failure (e.g. malformed frame) is one error
            // response.
            return match QueryResponse::decode(opcode, &body) {
                Some(QueryResponse::Error { code, message }) => {
                    Err(protocol_err(&format!("server error {code}: {message}")))
                }
                _ => Err(protocol_err(&format!(
                    "unexpected batch reply (opcode {opcode:#04x})"
                ))),
            };
        }
        let replies = decode_response_batch(&body)
            .ok_or_else(|| protocol_err("malformed batch response"))?;
        if replies.len() != requests.len() {
            return Err(protocol_err(&format!(
                "batch reply count {} != request count {}",
                replies.len(),
                requests.len()
            )));
        }
        Ok(replies)
    }

    /// Coverage and estimated spread for many seed sets in one frame.
    pub fn spread_batch(&mut self, seed_sets: &[Vec<u32>]) -> io::Result<Vec<(u64, f64)>> {
        let requests: Vec<QueryRequest> = seed_sets
            .iter()
            .map(|seeds| QueryRequest::Spread {
                seeds: seeds.clone(),
            })
            .collect();
        self.batch(&requests)?
            .into_iter()
            .map(|resp| match resp {
                QueryResponse::Spread {
                    covered,
                    theta,
                    num_nodes,
                } => Ok((covered, spread_estimate(covered, theta, num_nodes))),
                QueryResponse::Error { code, message } => {
                    Err(protocol_err(&format!("server error {code}: {message}")))
                }
                other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
            })
            .collect()
    }

    /// Coverage and estimated spread of an arbitrary seed set.
    pub fn spread(&mut self, seeds: &[u32]) -> io::Result<(u64, f64)> {
        match self.expect(&QueryRequest::Spread {
            seeds: seeds.to_vec(),
        })? {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            } => Ok((covered, spread_estimate(covered, theta, num_nodes))),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Constrained top-k selection (see
    /// [`dim_coverage::constrained_greedy`] for the semantics).
    pub fn top_k(&mut self, k: u32, include: &[u32], exclude: &[u32]) -> io::Result<TopKResult> {
        match self.expect(&QueryRequest::TopK {
            k,
            include: include.to_vec(),
            exclude: exclude.to_vec(),
        })? {
            QueryResponse::TopK {
                seeds,
                marginals,
                covered,
                theta,
                num_nodes,
            } => Ok(TopKResult {
                seeds,
                marginals,
                covered,
                spread: spread_estimate(covered, theta, num_nodes),
            }),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Sketch statistics — also the health check.
    pub fn stats(&mut self) -> io::Result<SketchStats> {
        match self.expect(&QueryRequest::Stats)? {
            QueryResponse::Stats(s) => Ok(s),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }

    /// Admin: ask the server to hot-swap to the latest committed store
    /// generation. Returns `(generation, changed)`.
    pub fn reload(&mut self) -> io::Result<(u64, bool)> {
        match self.expect(&QueryRequest::Reload)? {
            QueryResponse::Reload {
                generation,
                changed,
            } => Ok((generation, changed)),
            other => Err(protocol_err(&format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_within_jitter_bounds() {
        let mut b = Backoff::new(
            Duration::from_millis(50),
            Duration::from_millis(400),
            7,
        );
        let mut expected_base = Duration::from_millis(50);
        for _ in 0..6 {
            let d = b.next_delay();
            assert!(d >= expected_base / 2, "{d:?} < {expected_base:?}/2");
            assert!(d <= expected_base, "{d:?} > {expected_base:?}");
            expected_base = (expected_base * 2).min(Duration::from_millis(400));
        }
        // Two different seeds draw different jitter streams.
        let base = Duration::from_secs(500);
        let a = Backoff::new(base, base, 1).next_delay();
        let c = Backoff::new(base, base, 2).next_delay();
        assert_ne!(a, c);
    }

    #[test]
    fn connect_with_gives_up_at_deadline() {
        // A port nothing listens on: bind-then-drop reserves one.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let start = Instant::now();
        let options = ConnectOptions {
            deadline: Duration::from_millis(300),
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(50),
            jitter_seed: 3,
            credentials: None,
        };
        assert!(QueryClient::connect_with(addr, &options).is_err());
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_secs(5), "kept retrying: {elapsed:?}");
    }

    #[test]
    fn connect_with_succeeds_once_server_appears() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept in the background so the TCP handshake completes.
        let accept = std::thread::spawn(move || listener.accept().map(|_| ()));
        let client = QueryClient::connect_with(addr, &ConnectOptions::default());
        assert!(client.is_ok());
        accept.join().unwrap().unwrap();
    }
}
