//! The query wire protocol: strict little-endian codecs in the style of
//! `dim_cluster::ops`, carried in the cluster wire's length-prefixed
//! frames (`dim_cluster::wire::{read_frame, write_frame}`).
//!
//! Requests and responses each own an opcode namespace (responses set the
//! high bit), so a frame is self-describing: `(opcode, body)` decodes to
//! exactly one message or is rejected. Decoders are strict — trailing
//! bytes, truncated fields, and counts that exceed the body length all
//! fail, and counts are bounds-checked *before* any allocation.

use dim_cluster::ops::{put_u32, put_u64, Reader};

/// Request opcodes.
pub const REQ_SPREAD: u8 = 0x01;
pub const REQ_TOP_K: u8 = 0x02;
pub const REQ_STATS: u8 = 0x03;
/// A pipelined batch of read-only queries: one frame, N queries, N
/// replies in request order. Not a [`QueryRequest`] variant — batches are
/// framed by [`encode_batch`]/[`decode_batch`] and cannot nest.
pub const REQ_BATCH: u8 = 0x04;
/// Admin: re-scan the snapshot store and hot-swap to the latest
/// generation.
pub const REQ_RELOAD: u8 = 0x05;
/// Tenant authentication: must be the first frame on a connection to a
/// multi-tenant server. Carries a version byte, the tenant id, and the
/// SHA-256 digest of the tenant token (the secret itself never travels).
pub const REQ_AUTH: u8 = 0x06;

/// Response opcodes (request opcode with the high bit set, plus error).
pub const RESP_SPREAD: u8 = 0x81;
pub const RESP_TOP_K: u8 = 0x82;
pub const RESP_STATS: u8 = 0x83;
pub const RESP_BATCH: u8 = 0x84;
pub const RESP_RELOAD: u8 = 0x85;
pub const RESP_AUTH: u8 = 0x86;
pub const RESP_ERROR: u8 = 0xEE;

/// The AUTH frame version this build speaks; servers reject others with
/// [`ERR_UNSUPPORTED`].
pub const AUTH_VERSION: u8 = 1;

/// Longest tenant id the codec accepts, bytes. Bounds the allocation a
/// hostile AUTH frame can demand and keeps ids printable in logs.
pub const MAX_TENANT_ID_LEN: usize = 128;

/// Error codes carried by [`QueryResponse::Error`].
pub const ERR_MALFORMED: u8 = 1;
pub const ERR_UNSUPPORTED: u8 = 2;
/// The server is at its connection limit; the connection is closed after
/// this reply. Retry later against a less loaded server.
pub const ERR_OVERLOADED: u8 = 3;
/// A reload was requested but failed (no store configured, or the store
/// scan/load errored). The serving sketch is unchanged.
pub const ERR_RELOAD: u8 = 4;
/// The presented token digest does not match the tenant's registered
/// digest, or a query arrived before AUTH on a multi-tenant server. The
/// connection is closed after this reply.
pub const ERR_UNAUTHORIZED: u8 = 5;
/// The AUTH frame named a tenant id absent from the registry. The
/// connection is closed after this reply.
pub const ERR_UNKNOWN_TENANT: u8 = 6;
/// A per-tenant quota tripped (in-flight ceiling, queries/sec bucket, or
/// batch size). Unlike the global [`ERR_OVERLOADED`] shed, the connection
/// stays open — the caller should back off and retry.
pub const ERR_QUOTA: u8 = 7;

/// One influence query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// Estimate the spread of an arbitrary seed set.
    Spread { seeds: Vec<u32> },
    /// Constrained top-k selection: `include` is forced in, `exclude` is
    /// never selected, `k` is the total seed-set size.
    TopK {
        k: u32,
        include: Vec<u32>,
        exclude: Vec<u32>,
    },
    /// Sketch statistics and a liveness check.
    Stats,
    /// Admin: hot-swap to the latest committed store generation.
    Reload,
    /// Tenant authentication (first frame on a multi-tenant connection).
    /// `auth` is the SHA-256 digest of the tenant token.
    Auth {
        version: u8,
        tenant: String,
        auth: dim_cluster::auth::Digest,
    },
}

/// Sketch-wide statistics (the stats/health reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Node count `n` of the graph the sketch was sampled from.
    pub num_nodes: u64,
    /// Total RR sets in the sketch (θ).
    pub theta: u64,
    /// Shards the sketch is split into (the sampling run's ℓ).
    pub shard_count: u32,
    /// Σ over RR sets of their size.
    pub total_rr_size: u64,
    /// Queries answered since the server started.
    pub queries_answered: u64,
    /// Store generation of the sketch that answered *this* request.
    pub generation: u64,
    /// Connections refused with [`ERR_OVERLOADED`] since start.
    pub shed: u64,
    /// Requests refused with [`ERR_QUOTA`] for this tenant since start
    /// (always 0 on a single-tenant server).
    pub quota_shed: u64,
    /// Query-latency percentiles (µs) since start.
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

/// One reply. `covered`/`theta`/`num_nodes` travel together so a client
/// can turn coverage into a spread estimate without a second round trip.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    Spread {
        covered: u64,
        theta: u64,
        num_nodes: u64,
    },
    TopK {
        seeds: Vec<u32>,
        marginals: Vec<u64>,
        covered: u64,
        theta: u64,
        num_nodes: u64,
    },
    Stats(SketchStats),
    /// Reply to [`QueryRequest::Reload`]: the generation now serving, and
    /// whether the request actually swapped sketches (`false` when the
    /// store had nothing newer).
    Reload { generation: u64, changed: bool },
    /// Reply to a successful [`QueryRequest::Auth`]: echoes the tenant id
    /// the connection is now scoped to and the generation it will query.
    AuthOk { tenant: String, generation: u64 },
    Error { code: u8, message: String },
}

/// The spread estimate `n · covered / θ` (Eq. 2); 0 for an empty sketch.
pub fn spread_estimate(covered: u64, theta: u64, num_nodes: u64) -> f64 {
    if theta == 0 {
        0.0
    } else {
        num_nodes as f64 * covered as f64 / theta as f64
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[u32]) {
    put_u64(out, ids.len() as u64);
    for &id in ids {
        put_u32(out, id);
    }
}

fn take_ids(r: &mut Reader) -> Option<Vec<u32>> {
    let count = r.u64()?;
    if count > (r.remaining() / 4) as u64 {
        return None;
    }
    (0..count).map(|_| r.u32()).collect()
}

fn take_u64s(r: &mut Reader, count: u64) -> Option<Vec<u64>> {
    if count > (r.remaining() / 8) as u64 {
        return None;
    }
    (0..count).map(|_| r.u64()).collect()
}

/// `len u32 · utf8 bytes`, capped at [`MAX_TENANT_ID_LEN`].
fn put_tenant_id(out: &mut Vec<u8>, id: &str) {
    let bytes = id.as_bytes();
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn take_tenant_id(r: &mut Reader) -> Option<String> {
    let len = r.u32()? as usize;
    if len > MAX_TENANT_ID_LEN {
        return None;
    }
    String::from_utf8(r.take(len)?.to_vec()).ok()
}

fn take_digest(r: &mut Reader) -> Option<dim_cluster::auth::Digest> {
    let mut digest = [0u8; dim_cluster::auth::DIGEST_LEN];
    digest.copy_from_slice(r.take(dim_cluster::auth::DIGEST_LEN)?);
    Some(digest)
}

impl QueryRequest {
    /// The frame opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            QueryRequest::Spread { .. } => REQ_SPREAD,
            QueryRequest::TopK { .. } => REQ_TOP_K,
            QueryRequest::Stats => REQ_STATS,
            QueryRequest::Reload => REQ_RELOAD,
            QueryRequest::Auth { .. } => REQ_AUTH,
        }
    }

    /// Canonical body encoding (the opcode travels in the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryRequest::Spread { seeds } => put_ids(&mut out, seeds),
            QueryRequest::TopK {
                k,
                include,
                exclude,
            } => {
                put_u32(&mut out, *k);
                put_ids(&mut out, include);
                put_ids(&mut out, exclude);
            }
            QueryRequest::Stats | QueryRequest::Reload => {}
            QueryRequest::Auth {
                version,
                tenant,
                auth,
            } => {
                out.push(*version);
                put_tenant_id(&mut out, tenant);
                out.extend_from_slice(auth);
            }
        }
        out
    }

    /// Strict decode of `(opcode, body)`; `None` on any malformation.
    pub fn decode(opcode: u8, body: &[u8]) -> Option<QueryRequest> {
        let mut r = Reader::new(body);
        let req = match opcode {
            REQ_SPREAD => QueryRequest::Spread {
                seeds: take_ids(&mut r)?,
            },
            REQ_TOP_K => QueryRequest::TopK {
                k: r.u32()?,
                include: take_ids(&mut r)?,
                exclude: take_ids(&mut r)?,
            },
            REQ_STATS => QueryRequest::Stats,
            REQ_RELOAD => QueryRequest::Reload,
            REQ_AUTH => QueryRequest::Auth {
                version: r.u8()?,
                tenant: take_tenant_id(&mut r)?,
                auth: take_digest(&mut r)?,
            },
            _ => return None,
        };
        r.finish()?;
        Some(req)
    }
}

/// Encodes a batch body: `count u32`, then per entry `opcode u8 ·
/// body_len u32 · body`. One frame carries the whole pipeline; the reply
/// is a [`RESP_BATCH`] frame with the responses in request order.
pub fn encode_batch(requests: &[QueryRequest]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, requests.len() as u32);
    for req in requests {
        let body = req.encode();
        out.push(req.opcode());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
    }
    out
}

/// Strict decode of a [`REQ_BATCH`] body. Only read-only queries may ride
/// in a batch: a nested batch, a [`QueryRequest::Reload`] entry, or a
/// [`QueryRequest::Auth`] entry rejects the whole frame (auth scopes the
/// connection, not a batch position), as does any malformed entry. The
/// entry count is bounds-checked against the body length (≥ 5 bytes per
/// entry) before any allocation.
pub fn decode_batch(body: &[u8]) -> Option<Vec<QueryRequest>> {
    let mut r = Reader::new(body);
    let count = r.u32()?;
    if count as u64 * 5 > r.remaining() as u64 {
        return None;
    }
    let mut requests = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let opcode = r.u8()?;
        if opcode == REQ_BATCH || opcode == REQ_RELOAD || opcode == REQ_AUTH {
            return None;
        }
        let len = r.u32()? as usize;
        let entry = r.take(len)?;
        requests.push(QueryRequest::decode(opcode, entry)?);
    }
    r.finish()?;
    Some(requests)
}

/// Encodes a [`RESP_BATCH`] body: same entry framing as [`encode_batch`].
pub fn encode_response_batch(responses: &[QueryResponse]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, responses.len() as u32);
    for resp in responses {
        let body = resp.encode();
        out.push(resp.opcode());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
    }
    out
}

/// Strict decode of a [`RESP_BATCH`] body. Per-query failures travel as
/// [`QueryResponse::Error`] entries; nested batches are rejected.
pub fn decode_response_batch(body: &[u8]) -> Option<Vec<QueryResponse>> {
    let mut r = Reader::new(body);
    let count = r.u32()?;
    if count as u64 * 5 > r.remaining() as u64 {
        return None;
    }
    let mut responses = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let opcode = r.u8()?;
        if opcode == RESP_BATCH || opcode == RESP_AUTH {
            return None;
        }
        let len = r.u32()? as usize;
        let entry = r.take(len)?;
        responses.push(QueryResponse::decode(opcode, entry)?);
    }
    r.finish()?;
    Some(responses)
}

impl QueryResponse {
    /// The frame opcode this response travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            QueryResponse::Spread { .. } => RESP_SPREAD,
            QueryResponse::TopK { .. } => RESP_TOP_K,
            QueryResponse::Stats(_) => RESP_STATS,
            QueryResponse::Reload { .. } => RESP_RELOAD,
            QueryResponse::AuthOk { .. } => RESP_AUTH,
            QueryResponse::Error { .. } => RESP_ERROR,
        }
    }

    /// Canonical body encoding (the opcode travels in the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            } => {
                put_u64(&mut out, *covered);
                put_u64(&mut out, *theta);
                put_u64(&mut out, *num_nodes);
            }
            QueryResponse::TopK {
                seeds,
                marginals,
                covered,
                theta,
                num_nodes,
            } => {
                debug_assert_eq!(seeds.len(), marginals.len());
                put_ids(&mut out, seeds);
                for &m in marginals {
                    put_u64(&mut out, m);
                }
                put_u64(&mut out, *covered);
                put_u64(&mut out, *theta);
                put_u64(&mut out, *num_nodes);
            }
            QueryResponse::Stats(s) => {
                put_u64(&mut out, s.num_nodes);
                put_u64(&mut out, s.theta);
                put_u32(&mut out, s.shard_count);
                put_u64(&mut out, s.total_rr_size);
                put_u64(&mut out, s.queries_answered);
                put_u64(&mut out, s.generation);
                put_u64(&mut out, s.shed);
                put_u64(&mut out, s.quota_shed);
                put_u64(&mut out, s.p50_us);
                put_u64(&mut out, s.p95_us);
                put_u64(&mut out, s.p99_us);
            }
            QueryResponse::Reload {
                generation,
                changed,
            } => {
                put_u64(&mut out, *generation);
                out.push(*changed as u8);
            }
            QueryResponse::AuthOk { tenant, generation } => {
                put_tenant_id(&mut out, tenant);
                put_u64(&mut out, *generation);
            }
            QueryResponse::Error { code, message } => {
                out.push(*code);
                let bytes = message.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Strict decode of `(opcode, body)`; `None` on any malformation.
    pub fn decode(opcode: u8, body: &[u8]) -> Option<QueryResponse> {
        let mut r = Reader::new(body);
        let resp = match opcode {
            RESP_SPREAD => QueryResponse::Spread {
                covered: r.u64()?,
                theta: r.u64()?,
                num_nodes: r.u64()?,
            },
            RESP_TOP_K => {
                let seeds = take_ids(&mut r)?;
                let marginals = take_u64s(&mut r, seeds.len() as u64)?;
                QueryResponse::TopK {
                    seeds,
                    marginals,
                    covered: r.u64()?,
                    theta: r.u64()?,
                    num_nodes: r.u64()?,
                }
            }
            RESP_STATS => QueryResponse::Stats(SketchStats {
                num_nodes: r.u64()?,
                theta: r.u64()?,
                shard_count: r.u32()?,
                total_rr_size: r.u64()?,
                queries_answered: r.u64()?,
                generation: r.u64()?,
                shed: r.u64()?,
                quota_shed: r.u64()?,
                p50_us: r.u64()?,
                p95_us: r.u64()?,
                p99_us: r.u64()?,
            }),
            RESP_RELOAD => QueryResponse::Reload {
                generation: r.u64()?,
                changed: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            RESP_AUTH => QueryResponse::AuthOk {
                tenant: take_tenant_id(&mut r)?,
                generation: r.u64()?,
            },
            RESP_ERROR => {
                let code = r.u8()?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                QueryResponse::Error {
                    code,
                    message: String::from_utf8(bytes.to_vec()).ok()?,
                }
            }
            _ => return None,
        };
        r.finish()?;
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: QueryRequest) {
        let body = req.encode();
        assert_eq!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    fn roundtrip_resp(resp: QueryResponse) {
        let body = resp.encode();
        assert_eq!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(QueryRequest::Spread { seeds: vec![] });
        roundtrip_req(QueryRequest::Spread {
            seeds: vec![0, 7, u32::MAX],
        });
        roundtrip_req(QueryRequest::TopK {
            k: 10,
            include: vec![1, 2],
            exclude: vec![3],
        });
        roundtrip_req(QueryRequest::Stats);
        roundtrip_req(QueryRequest::Reload);
        roundtrip_req(QueryRequest::Auth {
            version: AUTH_VERSION,
            tenant: "acme".into(),
            auth: dim_cluster::auth::token_digest("s3cret"),
        });
        roundtrip_req(QueryRequest::Auth {
            version: 0,
            tenant: String::new(),
            auth: [0; 32],
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(QueryResponse::Spread {
            covered: 5,
            theta: 100,
            num_nodes: 50,
        });
        roundtrip_resp(QueryResponse::TopK {
            seeds: vec![4, 1],
            marginals: vec![9, 3],
            covered: 12,
            theta: 40,
            num_nodes: 20,
        });
        roundtrip_resp(QueryResponse::Stats(SketchStats {
            num_nodes: 9,
            theta: 77,
            shard_count: 4,
            total_rr_size: 300,
            queries_answered: 12,
            generation: 3,
            shed: 2,
            quota_shed: 1,
            p50_us: 11,
            p95_us: 220,
            p99_us: 900,
        }));
        roundtrip_resp(QueryResponse::Reload {
            generation: 7,
            changed: true,
        });
        roundtrip_resp(QueryResponse::Reload {
            generation: 7,
            changed: false,
        });
        roundtrip_resp(QueryResponse::AuthOk {
            tenant: "acme".into(),
            generation: 12,
        });
        roundtrip_resp(QueryResponse::Error {
            code: ERR_MALFORMED,
            message: "bad frame".into(),
        });
        roundtrip_resp(QueryResponse::Error {
            code: ERR_QUOTA,
            message: "tenant acme over qps".into(),
        });
    }

    #[test]
    fn auth_frame_is_strict() {
        let req = QueryRequest::Auth {
            version: AUTH_VERSION,
            tenant: "tenant-a".into(),
            auth: dim_cluster::auth::token_digest("tok"),
        };
        let body = req.encode();
        // Every truncation fails; so does a trailing byte.
        for cut in 0..body.len() {
            assert_eq!(QueryRequest::decode(REQ_AUTH, &body[..cut]), None);
        }
        let mut padded = body.clone();
        padded.push(0);
        assert_eq!(QueryRequest::decode(REQ_AUTH, &padded), None);
        // A hostile tenant-id length is refused before allocation.
        let mut hostile = vec![AUTH_VERSION];
        put_u32(&mut hostile, u32::MAX);
        assert_eq!(QueryRequest::decode(REQ_AUTH, &hostile), None);
        // ...as is one merely over the cap.
        let long = "x".repeat(MAX_TENANT_ID_LEN + 1);
        let mut over = vec![AUTH_VERSION];
        put_u32(&mut over, long.len() as u32);
        over.extend_from_slice(long.as_bytes());
        over.extend_from_slice(&[0; 32]);
        assert_eq!(QueryRequest::decode(REQ_AUTH, &over), None);
        // Non-UTF-8 tenant ids are refused.
        let mut bad = vec![AUTH_VERSION];
        put_u32(&mut bad, 1);
        bad.push(0xFF);
        bad.extend_from_slice(&[0; 32]);
        assert_eq!(QueryRequest::decode(REQ_AUTH, &bad), None);
    }

    #[test]
    fn auth_never_rides_in_a_batch() {
        // Request side: an AUTH entry rejects the whole frame.
        let auth = QueryRequest::Auth {
            version: AUTH_VERSION,
            tenant: "a".into(),
            auth: [7; 32],
        };
        let inner = auth.encode();
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        body.push(REQ_AUTH);
        put_u32(&mut body, inner.len() as u32);
        body.extend_from_slice(&inner);
        assert_eq!(decode_batch(&body), None);
        // Response side: an AuthOk entry rejects the whole frame.
        let ok = QueryResponse::AuthOk {
            tenant: "a".into(),
            generation: 1,
        };
        let inner = ok.encode();
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        body.push(RESP_AUTH);
        put_u32(&mut body, inner.len() as u32);
        body.extend_from_slice(&inner);
        assert_eq!(decode_response_batch(&body), None);
    }

    #[test]
    fn reload_bool_is_strict() {
        let mut body = Vec::new();
        put_u64(&mut body, 7);
        body.push(2); // neither 0 nor 1
        assert_eq!(QueryResponse::decode(RESP_RELOAD, &body), None);
    }

    #[test]
    fn batch_roundtrips_in_order() {
        let reqs = vec![
            QueryRequest::Stats,
            QueryRequest::Spread { seeds: vec![1, 2] },
            QueryRequest::TopK {
                k: 3,
                include: vec![0],
                exclude: vec![],
            },
            QueryRequest::Spread { seeds: vec![] },
        ];
        assert_eq!(decode_batch(&encode_batch(&reqs)), Some(reqs));
        assert_eq!(decode_batch(&encode_batch(&[])), Some(vec![]));

        let resps = vec![
            QueryResponse::Spread {
                covered: 1,
                theta: 2,
                num_nodes: 3,
            },
            QueryResponse::Error {
                code: ERR_UNSUPPORTED,
                message: "nope".into(),
            },
        ];
        assert_eq!(decode_response_batch(&encode_response_batch(&resps)), Some(resps));
    }

    #[test]
    fn batch_rejects_nesting_admin_and_truncation() {
        // A Reload entry rejects the whole frame: batches are read-only.
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        body.push(REQ_RELOAD);
        put_u32(&mut body, 0);
        assert_eq!(decode_batch(&body), None);
        // So does a nested batch.
        let inner = encode_batch(&[QueryRequest::Stats]);
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        body.push(REQ_BATCH);
        put_u32(&mut body, inner.len() as u32);
        body.extend_from_slice(&inner);
        assert_eq!(decode_batch(&body), None);
        // Every truncation of a valid batch fails.
        let body = encode_batch(&[
            QueryRequest::Spread { seeds: vec![1] },
            QueryRequest::Stats,
        ]);
        for cut in 0..body.len() {
            assert_eq!(decode_batch(&body[..cut]), None, "prefix of {cut} bytes");
        }
        // Hostile count fails before allocation.
        let mut body = Vec::new();
        put_u32(&mut body, u32::MAX);
        assert_eq!(decode_batch(&body), None);
        assert_eq!(decode_response_batch(&body), None);
    }

    #[test]
    fn truncation_rejected() {
        let req = QueryRequest::TopK {
            k: 3,
            include: vec![1, 2, 3],
            exclude: vec![4, 5],
        };
        let body = req.encode();
        for cut in 0..body.len() {
            assert_eq!(
                QueryRequest::decode(req.opcode(), &body[..cut]),
                None,
                "prefix of {cut} bytes accepted"
            );
        }
        let resp = QueryResponse::TopK {
            seeds: vec![4, 1],
            marginals: vec![9, 3],
            covered: 12,
            theta: 40,
            num_nodes: 20,
        };
        let body = resp.encode();
        for cut in 0..body.len() {
            assert_eq!(QueryResponse::decode(resp.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = QueryRequest::Stats.encode();
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_STATS, &body), None);
        let mut body = QueryRequest::Spread { seeds: vec![1] }.encode();
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_SPREAD, &body), None);
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A count of u64::MAX with a 1-byte body must fail fast.
        let mut body = Vec::new();
        put_u64(&mut body, u64::MAX);
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_SPREAD, &body), None);
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(QueryRequest::decode(0x7f, &[]), None);
        assert_eq!(QueryResponse::decode(0x00, &[]), None);
    }

    #[test]
    fn spread_estimate_formula() {
        assert_eq!(spread_estimate(50, 100, 200), 100.0);
        assert_eq!(spread_estimate(0, 0, 10), 0.0);
    }
}
