//! The query wire protocol: strict little-endian codecs in the style of
//! `dim_cluster::ops`, carried in the cluster wire's length-prefixed
//! frames (`dim_cluster::wire::{read_frame, write_frame}`).
//!
//! Requests and responses each own an opcode namespace (responses set the
//! high bit), so a frame is self-describing: `(opcode, body)` decodes to
//! exactly one message or is rejected. Decoders are strict — trailing
//! bytes, truncated fields, and counts that exceed the body length all
//! fail, and counts are bounds-checked *before* any allocation.

use dim_cluster::ops::{put_u32, put_u64, Reader};

/// Request opcodes.
pub const REQ_SPREAD: u8 = 0x01;
pub const REQ_TOP_K: u8 = 0x02;
pub const REQ_STATS: u8 = 0x03;

/// Response opcodes (request opcode with the high bit set, plus error).
pub const RESP_SPREAD: u8 = 0x81;
pub const RESP_TOP_K: u8 = 0x82;
pub const RESP_STATS: u8 = 0x83;
pub const RESP_ERROR: u8 = 0xEE;

/// Error codes carried by [`QueryResponse::Error`].
pub const ERR_MALFORMED: u8 = 1;
pub const ERR_UNSUPPORTED: u8 = 2;

/// One influence query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// Estimate the spread of an arbitrary seed set.
    Spread { seeds: Vec<u32> },
    /// Constrained top-k selection: `include` is forced in, `exclude` is
    /// never selected, `k` is the total seed-set size.
    TopK {
        k: u32,
        include: Vec<u32>,
        exclude: Vec<u32>,
    },
    /// Sketch statistics and a liveness check.
    Stats,
}

/// Sketch-wide statistics (the stats/health reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Node count `n` of the graph the sketch was sampled from.
    pub num_nodes: u64,
    /// Total RR sets in the sketch (θ).
    pub theta: u64,
    /// Shards the sketch is split into (the sampling run's ℓ).
    pub shard_count: u32,
    /// Σ over RR sets of their size.
    pub total_rr_size: u64,
    /// Queries answered since the server started.
    pub queries_answered: u64,
}

/// One reply. `covered`/`theta`/`num_nodes` travel together so a client
/// can turn coverage into a spread estimate without a second round trip.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    Spread {
        covered: u64,
        theta: u64,
        num_nodes: u64,
    },
    TopK {
        seeds: Vec<u32>,
        marginals: Vec<u64>,
        covered: u64,
        theta: u64,
        num_nodes: u64,
    },
    Stats(SketchStats),
    Error { code: u8, message: String },
}

/// The spread estimate `n · covered / θ` (Eq. 2); 0 for an empty sketch.
pub fn spread_estimate(covered: u64, theta: u64, num_nodes: u64) -> f64 {
    if theta == 0 {
        0.0
    } else {
        num_nodes as f64 * covered as f64 / theta as f64
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[u32]) {
    put_u64(out, ids.len() as u64);
    for &id in ids {
        put_u32(out, id);
    }
}

fn take_ids(r: &mut Reader) -> Option<Vec<u32>> {
    let count = r.u64()?;
    if count > (r.remaining() / 4) as u64 {
        return None;
    }
    (0..count).map(|_| r.u32()).collect()
}

fn take_u64s(r: &mut Reader, count: u64) -> Option<Vec<u64>> {
    if count > (r.remaining() / 8) as u64 {
        return None;
    }
    (0..count).map(|_| r.u64()).collect()
}

impl QueryRequest {
    /// The frame opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            QueryRequest::Spread { .. } => REQ_SPREAD,
            QueryRequest::TopK { .. } => REQ_TOP_K,
            QueryRequest::Stats => REQ_STATS,
        }
    }

    /// Canonical body encoding (the opcode travels in the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryRequest::Spread { seeds } => put_ids(&mut out, seeds),
            QueryRequest::TopK {
                k,
                include,
                exclude,
            } => {
                put_u32(&mut out, *k);
                put_ids(&mut out, include);
                put_ids(&mut out, exclude);
            }
            QueryRequest::Stats => {}
        }
        out
    }

    /// Strict decode of `(opcode, body)`; `None` on any malformation.
    pub fn decode(opcode: u8, body: &[u8]) -> Option<QueryRequest> {
        let mut r = Reader::new(body);
        let req = match opcode {
            REQ_SPREAD => QueryRequest::Spread {
                seeds: take_ids(&mut r)?,
            },
            REQ_TOP_K => QueryRequest::TopK {
                k: r.u32()?,
                include: take_ids(&mut r)?,
                exclude: take_ids(&mut r)?,
            },
            REQ_STATS => QueryRequest::Stats,
            _ => return None,
        };
        r.finish()?;
        Some(req)
    }
}

impl QueryResponse {
    /// The frame opcode this response travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            QueryResponse::Spread { .. } => RESP_SPREAD,
            QueryResponse::TopK { .. } => RESP_TOP_K,
            QueryResponse::Stats(_) => RESP_STATS,
            QueryResponse::Error { .. } => RESP_ERROR,
        }
    }

    /// Canonical body encoding (the opcode travels in the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryResponse::Spread {
                covered,
                theta,
                num_nodes,
            } => {
                put_u64(&mut out, *covered);
                put_u64(&mut out, *theta);
                put_u64(&mut out, *num_nodes);
            }
            QueryResponse::TopK {
                seeds,
                marginals,
                covered,
                theta,
                num_nodes,
            } => {
                debug_assert_eq!(seeds.len(), marginals.len());
                put_ids(&mut out, seeds);
                for &m in marginals {
                    put_u64(&mut out, m);
                }
                put_u64(&mut out, *covered);
                put_u64(&mut out, *theta);
                put_u64(&mut out, *num_nodes);
            }
            QueryResponse::Stats(s) => {
                put_u64(&mut out, s.num_nodes);
                put_u64(&mut out, s.theta);
                put_u32(&mut out, s.shard_count);
                put_u64(&mut out, s.total_rr_size);
                put_u64(&mut out, s.queries_answered);
            }
            QueryResponse::Error { code, message } => {
                out.push(*code);
                let bytes = message.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Strict decode of `(opcode, body)`; `None` on any malformation.
    pub fn decode(opcode: u8, body: &[u8]) -> Option<QueryResponse> {
        let mut r = Reader::new(body);
        let resp = match opcode {
            RESP_SPREAD => QueryResponse::Spread {
                covered: r.u64()?,
                theta: r.u64()?,
                num_nodes: r.u64()?,
            },
            RESP_TOP_K => {
                let seeds = take_ids(&mut r)?;
                let marginals = take_u64s(&mut r, seeds.len() as u64)?;
                QueryResponse::TopK {
                    seeds,
                    marginals,
                    covered: r.u64()?,
                    theta: r.u64()?,
                    num_nodes: r.u64()?,
                }
            }
            RESP_STATS => QueryResponse::Stats(SketchStats {
                num_nodes: r.u64()?,
                theta: r.u64()?,
                shard_count: r.u32()?,
                total_rr_size: r.u64()?,
                queries_answered: r.u64()?,
            }),
            RESP_ERROR => {
                let code = r.u8()?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                QueryResponse::Error {
                    code,
                    message: String::from_utf8(bytes.to_vec()).ok()?,
                }
            }
            _ => return None,
        };
        r.finish()?;
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: QueryRequest) {
        let body = req.encode();
        assert_eq!(QueryRequest::decode(req.opcode(), &body), Some(req));
    }

    fn roundtrip_resp(resp: QueryResponse) {
        let body = resp.encode();
        assert_eq!(QueryResponse::decode(resp.opcode(), &body), Some(resp));
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(QueryRequest::Spread { seeds: vec![] });
        roundtrip_req(QueryRequest::Spread {
            seeds: vec![0, 7, u32::MAX],
        });
        roundtrip_req(QueryRequest::TopK {
            k: 10,
            include: vec![1, 2],
            exclude: vec![3],
        });
        roundtrip_req(QueryRequest::Stats);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(QueryResponse::Spread {
            covered: 5,
            theta: 100,
            num_nodes: 50,
        });
        roundtrip_resp(QueryResponse::TopK {
            seeds: vec![4, 1],
            marginals: vec![9, 3],
            covered: 12,
            theta: 40,
            num_nodes: 20,
        });
        roundtrip_resp(QueryResponse::Stats(SketchStats {
            num_nodes: 9,
            theta: 77,
            shard_count: 4,
            total_rr_size: 300,
            queries_answered: 12,
        }));
        roundtrip_resp(QueryResponse::Error {
            code: ERR_MALFORMED,
            message: "bad frame".into(),
        });
    }

    #[test]
    fn truncation_rejected() {
        let req = QueryRequest::TopK {
            k: 3,
            include: vec![1, 2, 3],
            exclude: vec![4, 5],
        };
        let body = req.encode();
        for cut in 0..body.len() {
            assert_eq!(
                QueryRequest::decode(req.opcode(), &body[..cut]),
                None,
                "prefix of {cut} bytes accepted"
            );
        }
        let resp = QueryResponse::TopK {
            seeds: vec![4, 1],
            marginals: vec![9, 3],
            covered: 12,
            theta: 40,
            num_nodes: 20,
        };
        let body = resp.encode();
        for cut in 0..body.len() {
            assert_eq!(QueryResponse::decode(resp.opcode(), &body[..cut]), None);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = QueryRequest::Stats.encode();
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_STATS, &body), None);
        let mut body = QueryRequest::Spread { seeds: vec![1] }.encode();
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_SPREAD, &body), None);
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A count of u64::MAX with a 1-byte body must fail fast.
        let mut body = Vec::new();
        put_u64(&mut body, u64::MAX);
        body.push(0);
        assert_eq!(QueryRequest::decode(REQ_SPREAD, &body), None);
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(QueryRequest::decode(0x7f, &[]), None);
        assert_eq!(QueryResponse::decode(0x00, &[]), None);
    }

    #[test]
    fn spread_estimate_formula() {
        assert_eq!(spread_estimate(50, 100, 200), 100.0);
        assert_eq!(spread_estimate(0, 0, 10), 0.0);
    }
}
