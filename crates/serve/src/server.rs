//! The query server: a bounded worker pool over a shared accept queue,
//! serving a hot-swappable generation-tagged [`Sketch`].
//!
//! # Architecture
//!
//! One accept thread owns the listener. Each accepted connection is
//! registered (so shutdown can unblock its reader) and pushed onto an
//! mpsc queue; a fixed pool of worker threads pulls connections off the
//! queue and runs each request/reply loop to completion. The pool bounds
//! CPU concurrency — `workers` connections are served at once, further
//! accepted connections wait in the queue — while `max_conns` bounds
//! admission: past it, a connection gets one typed
//! `RESP_ERROR`/[`ERR_OVERLOADED`] reply and is closed (load shedding,
//! counted in [`ServeMetrics::shed`]).
//!
//! # Hot reload
//!
//! The serving sketch lives behind `RwLock<Arc<SketchState>>`. Every
//! request (or batch) clones the `Arc` once — pinning a generation — and
//! answers entirely against it, so a concurrent [`Server::reload`] swaps
//! the pointer without ever stalling or corrupting an in-flight query:
//! readers on the old generation finish there; the next request sees the
//! new one. Reloads re-scan a generation store
//! ([`dim_store::load_latest_snapshot`]) and swap only when a newer
//! committed generation exists.
//!
//! # Multi-tenant mode
//!
//! [`Server::start_multi`] binds one daemon to many tenants: each
//! [`TenantBind`] carries its own sketch, generation, and reload source,
//! so tenants hot-reload independently. A connection must authenticate
//! with one `REQ_AUTH` frame before anything else; every subsequent
//! opcode is scoped to that tenant — its sketch, its reload source, its
//! counters. Per-tenant quotas ([`dim_serve::tenant::TenantQuota`]) shed
//! with `ERR_QUOTA` (connection survives, unlike the global
//! `ERR_OVERLOADED` admission shed): an in-flight ceiling, a queries/sec
//! token bucket (burst = one second's allowance), and a batch-size cap.
//! Single-tenant servers ([`Server::start`]) are the same machinery with
//! one implicit open tenant — no AUTH frame required, wire-compatible
//! with pre-tenant clients.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dim_cluster::wire::{read_frame, write_frame};
use dim_coverage::{constrained_greedy, seed_set_coverage, CoverageShard, SketchCursors};
use dim_store::{Snapshot, SnapshotRequest, StoreError};

use crate::auth::failure_error;
use crate::metrics::{LatencyHistogram, ServeMetrics};
use crate::proto::{
    decode_batch, encode_response_batch, QueryRequest, QueryResponse, SketchStats, AUTH_VERSION,
    ERR_MALFORMED, ERR_OVERLOADED, ERR_QUOTA, ERR_RELOAD, ERR_UNAUTHORIZED, ERR_UNSUPPORTED,
    REQ_AUTH, REQ_BATCH, RESP_BATCH,
};
use crate::tenant::{TenantQuota, TenantSpec};

/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How often an idle worker polls the stop flag.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// An immutable in-memory RR sketch: the per-machine coverage shards of
/// one sampling run plus the scalars queries need. Queries evaluate
/// through read-only [`dim_coverage::QueryCursor`]s, so one sketch serves
/// any number of concurrent connections without locking.
pub struct Sketch {
    shards: Vec<CoverageShard>,
    num_nodes: usize,
    theta: u64,
    total_rr_size: u64,
}

impl Sketch {
    /// Wraps prepared coverage shards. Panics if any shard's set domain
    /// differs from `num_nodes` or its transpose index is stale.
    pub fn new(num_nodes: usize, theta: u64, total_rr_size: u64, shards: Vec<CoverageShard>) -> Self {
        for shard in &shards {
            assert_eq!(shard.num_sets(), num_nodes, "shard domain != num_nodes");
            assert!(!shard.needs_prepare(), "shard index is stale");
        }
        Sketch {
            shards,
            num_nodes,
            theta,
            total_rr_size,
        }
    }

    /// Builds the sketch from a validated dim-store snapshot; `num_nodes`
    /// comes from the graph the snapshot was checked against.
    pub fn from_snapshot(num_nodes: usize, snapshot: Snapshot) -> Self {
        let theta = snapshot.theta;
        let total_rr_size = snapshot.total_size();
        let num_sets = snapshot.num_sets as usize;
        let shards: Vec<CoverageShard> = snapshot
            .shards
            .into_iter()
            .map(|s| CoverageShard::from_pooled(num_sets, s.elements, s.index))
            .collect();
        Sketch::new(num_nodes, theta, total_rr_size, shards)
    }

    /// Node count `n` of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total RR sets in the sketch (θ).
    pub fn theta(&self) -> u64 {
        self.theta
    }

    /// The coverage shards, for direct (in-process) evaluation.
    pub fn shards(&self) -> &[CoverageShard] {
        &self.shards
    }

    /// Answers one query against the frozen sketch. [`QueryRequest::Reload`]
    /// is a server-level operation, not a sketch query, and returns a
    /// typed [`ERR_UNSUPPORTED`] error here.
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::Spread { seeds } => QueryResponse::Spread {
                covered: seed_set_coverage(&self.shards, seeds),
                theta: self.theta,
                num_nodes: self.num_nodes as u64,
            },
            QueryRequest::TopK {
                k,
                include,
                exclude,
            } => {
                let r = constrained_greedy(&self.shards, *k as usize, include, exclude);
                QueryResponse::TopK {
                    seeds: r.seeds,
                    marginals: r.marginals,
                    covered: r.covered,
                    theta: self.theta,
                    num_nodes: self.num_nodes as u64,
                }
            }
            QueryRequest::Stats => QueryResponse::Stats(SketchStats {
                num_nodes: self.num_nodes as u64,
                theta: self.theta,
                shard_count: self.shards.len() as u32,
                total_rr_size: self.total_rr_size,
                queries_answered: 0, // filled in by the server
                ..SketchStats::default()
            }),
            QueryRequest::Reload => QueryResponse::Error {
                code: ERR_UNSUPPORTED,
                message: "reload is a server operation, not a sketch query".into(),
            },
            QueryRequest::Auth { .. } => QueryResponse::Error {
                code: ERR_UNSUPPORTED,
                message: "auth is a session operation, not a sketch query".into(),
            },
        }
    }
}

/// Where a server re-reads its sketch from on [`Server::reload`].
pub struct ReloadSource {
    /// Generation store root (see `dim_store::generation`).
    pub root: PathBuf,
    /// Provenance every loaded snapshot must match.
    pub request: SnapshotRequest,
    /// Node count of the graph the snapshots describe.
    pub num_nodes: usize,
}

/// Server tuning knobs; `Default` matches the PR-5 prototype's behavior
/// (no reload source, generation 0) with bounded threading.
pub struct ServeOptions {
    /// Worker threads — connections served concurrently.
    pub workers: usize,
    /// Admission limit: connections past this are shed with
    /// [`ERR_OVERLOADED`].
    pub max_conns: usize,
    /// Generation id of the initial sketch (0 for a flat/unversioned
    /// store).
    pub generation: u64,
    /// Store to re-scan on reload; `None` makes reload a typed error.
    pub reload: Option<ReloadSource>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 8,
            max_conns: 1024,
            generation: 0,
            reload: None,
        }
    }
}

/// Why a [`Server::reload`] did not swap sketches.
#[derive(Debug)]
pub enum ReloadError {
    /// The server was started without a [`ReloadSource`].
    Unsupported,
    /// Scanning or loading the store failed; the serving sketch is
    /// unchanged.
    Store(StoreError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Unsupported => write!(f, "server has no snapshot store to reload from"),
            ReloadError::Store(e) => write!(f, "reload failed: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// One generation of the serving sketch. Requests pin a generation by
/// cloning the `Arc` and answer entirely against it.
struct SketchState {
    generation: u64,
    sketch: Sketch,
}

/// One tenant's sketch plus one [`Server::start_multi`] slot: how the
/// caller binds registry entries to serving state.
pub struct TenantBind {
    /// Registry entry (id, token digest, quotas).
    pub spec: TenantSpec,
    /// Initial sketch.
    pub sketch: Sketch,
    /// Generation id of `sketch`.
    pub generation: u64,
    /// Store to re-scan on this tenant's reloads; `None` makes them a
    /// typed error.
    pub reload: Option<ReloadSource>,
}

/// A queries/sec token bucket: refills continuously at `max_qps`, caps
/// at one second's allowance (the burst), charges one token per query
/// (batch entries each count).
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(max_qps: u32) -> TokenBucket {
        TokenBucket {
            tokens: max_qps as f64,
            last: Instant::now(),
        }
    }

    /// Charges `cost` queries against a `max_qps` rate; `true` admits
    /// (tokens consumed), `false` refuses (tokens untouched). A zero
    /// rate means unlimited.
    fn admit(&mut self, max_qps: u32, cost: u64) -> bool {
        if max_qps == 0 {
            return true;
        }
        let rate = max_qps as f64;
        let now = Instant::now();
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * rate).min(rate);
        self.last = now;
        if self.tokens >= cost as f64 {
            self.tokens -= cost as f64;
            true
        } else {
            false
        }
    }
}

/// Everything one tenant's connections share: the hot-swappable sketch,
/// its reload machinery, quota state, and per-tenant accounting. A
/// single-tenant server is exactly one of these behind an open door.
struct TenantServing {
    spec: TenantSpec,
    state: RwLock<Arc<SketchState>>,
    reload_source: Option<ReloadSource>,
    /// Serializes this tenant's reloads (the state lock is only held for
    /// the swap).
    reload_lock: Mutex<()>,
    queries: AtomicU64,
    batches: AtomicU64,
    reloads: AtomicU64,
    /// Requests refused with `ERR_QUOTA`.
    quota_shed: AtomicU64,
    /// Request frames currently being answered for this tenant.
    in_flight: AtomicU64,
    /// Connections currently authenticated as this tenant.
    connections: AtomicU64,
    latency: LatencyHistogram,
    bucket: Mutex<TokenBucket>,
}

impl TenantServing {
    fn new(spec: TenantSpec, sketch: Sketch, generation: u64, reload: Option<ReloadSource>) -> Self {
        let bucket = TokenBucket::new(spec.quota.max_qps);
        TenantServing {
            spec,
            state: RwLock::new(Arc::new(SketchState { generation, sketch })),
            reload_source: reload,
            reload_lock: Mutex::new(()),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            quota_shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            bucket: Mutex::new(bucket),
        }
    }

    /// Pins the current generation.
    fn pinned(&self) -> Arc<SketchState> {
        Arc::clone(&self.state.read().unwrap())
    }

    /// This tenant's point-in-time metrics (global admission sheds are
    /// daemon-wide and excluded here).
    fn metrics(&self) -> ServeMetrics {
        ServeMetrics {
            active_generation: self.state.read().unwrap().generation,
            queries_answered: self.queries.load(Ordering::Relaxed),
            batches_answered: self.batches.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            shed: 0,
            quota_shed: self.quota_shed.load(Ordering::Relaxed),
            live_connections: self.connections.load(Ordering::Relaxed),
            p50_us: self.latency.quantile(0.5),
            p95_us: self.latency.quantile(0.95),
            p99_us: self.latency.quantile(0.99),
            max_us: self.latency.max(),
        }
    }

    /// Admits `cost` queries against the qps bucket and the in-flight
    /// ceiling, or names the limit that refused them. The returned guard
    /// holds the in-flight slot.
    fn admit<'a>(&'a self, cost: u64) -> Result<InFlightGuard<'a>, &'static str> {
        let quota = self.spec.quota;
        if !self.bucket.lock().unwrap().admit(quota.max_qps, cost) {
            return Err("queries/sec");
        }
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if quota.max_in_flight > 0 && prev >= quota.max_in_flight as u64 {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err("in-flight");
        }
        Ok(InFlightGuard(&self.in_flight))
    }
}

/// Releases a tenant's in-flight slot when the answer is written.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Shared {
    /// All tenants; exactly one in single-tenant mode.
    tenants: Vec<Arc<TenantServing>>,
    /// `true` iff connections must AUTH before querying
    /// ([`Server::start_multi`]).
    auth_required: bool,
    stop: AtomicBool,
    /// Connections refused with `ERR_OVERLOADED` (daemon-wide admission).
    shed: AtomicU64,
    /// Clones of every registered stream keyed by connection id, so
    /// shutdown can unblock readers; workers reap entries as their
    /// connections finish, keeping the map bounded by live connections.
    conns: Mutex<HashMap<u64, TcpStream>>,
    max_conns: usize,
}

impl Shared {
    fn find_tenant(&self, id: &str) -> Option<&Arc<TenantServing>> {
        self.tenants.iter().find(|t| t.spec.id == id)
    }
}

/// A running `dim serve` instance: one accept thread plus a bounded
/// worker pool, all sharing the (hot-swappable) sketch read-only.
///
/// Shutdown is deterministic: [`Server::shutdown`] (or drop) stops the
/// accept loop, closes every registered connection to unblock its reader,
/// and joins all threads — no orphan threads or sockets survive it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `sketch`
    /// with default [`ServeOptions`].
    pub fn start(addr: impl ToSocketAddrs, sketch: Sketch) -> io::Result<Server> {
        Server::start_with(addr, sketch, ServeOptions::default())
    }

    /// Binds `addr` and starts serving `sketch` with explicit options.
    /// Single-tenant: one implicit open tenant, no AUTH handshake.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        sketch: Sketch,
        mut options: ServeOptions,
    ) -> io::Result<Server> {
        let spec = TenantSpec {
            id: "default".into(),
            auth: [0; dim_cluster::auth::DIGEST_LEN],
            store: None,
            graph: None,
            quota: TenantQuota::default(),
        };
        let reload = options.reload.take();
        let tenant = TenantServing::new(spec, sketch, options.generation, reload);
        Server::launch(addr, vec![Arc::new(tenant)], false, &options)
    }

    /// Binds `addr` and starts serving every tenant in `binds` from one
    /// daemon. Connections must authenticate (`REQ_AUTH`) before their
    /// first query; each is then scoped to its tenant's sketch, reload
    /// source, quotas, and counters. Duplicate or empty tenant ids are
    /// an input error. `options.generation` / `options.reload` are
    /// ignored — each bind carries its own.
    pub fn start_multi(
        addr: impl ToSocketAddrs,
        binds: Vec<TenantBind>,
        options: ServeOptions,
    ) -> io::Result<Server> {
        if binds.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "start_multi needs at least one tenant",
            ));
        }
        for (i, b) in binds.iter().enumerate() {
            if b.spec.id.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "tenant id must be non-empty",
                ));
            }
            if binds[..i].iter().any(|prev| prev.spec.id == b.spec.id) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate tenant id {:?}", b.spec.id),
                ));
            }
        }
        let tenants = binds
            .into_iter()
            .map(|b| Arc::new(TenantServing::new(b.spec, b.sketch, b.generation, b.reload)))
            .collect();
        Server::launch(addr, tenants, true, &options)
    }

    fn launch(
        addr: impl ToSocketAddrs,
        tenants: Vec<Arc<TenantServing>>,
        auth_required: bool,
        options: &ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            tenants,
            auth_required,
            stop: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            max_conns: options.max_conns.max(1),
        });
        let (tx, rx) = mpsc::channel::<(u64, TcpStream)>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..options.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(rx, shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared, tx))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far, summed over tenants (batch entries each
    /// count once; malformed frames and reloads do not).
    pub fn queries_answered(&self) -> u64 {
        self.shared
            .tenants
            .iter()
            .map(|t| t.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Store generation currently serving (the first tenant's, which in
    /// single-tenant mode is the only one).
    pub fn generation(&self) -> u64 {
        self.shared.tenants[0].state.read().unwrap().generation
    }

    /// Connections currently registered (being served or queued).
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// A point-in-time snapshot of the daemon-wide serving metrics:
    /// counters summed over tenants, latency quantiles over the merged
    /// histogram, plus the global admission shed.
    pub fn metrics(&self) -> ServeMetrics {
        let s = &self.shared;
        let merged = LatencyHistogram::new();
        let mut m = ServeMetrics {
            active_generation: self.generation(),
            shed: s.shed.load(Ordering::Relaxed),
            live_connections: s.conns.lock().unwrap().len() as u64,
            ..ServeMetrics::default()
        };
        for t in &s.tenants {
            m.queries_answered += t.queries.load(Ordering::Relaxed);
            m.batches_answered += t.batches.load(Ordering::Relaxed);
            m.reloads += t.reloads.load(Ordering::Relaxed);
            m.quota_shed += t.quota_shed.load(Ordering::Relaxed);
            merged.merge(&t.latency);
        }
        m.p50_us = merged.quantile(0.5);
        m.p95_us = merged.quantile(0.95);
        m.p99_us = merged.quantile(0.99);
        m.max_us = merged.max();
        m
    }

    /// An admin handle to one tenant (any tenant id in multi mode;
    /// `"default"` in single-tenant mode).
    pub fn tenant(&self, id: &str) -> Option<TenantHandle> {
        self.shared.find_tenant(id).map(|t| TenantHandle {
            tenant: Arc::clone(t),
        })
    }

    /// The admin all-tenants view: `(tenant id, per-tenant metrics)` in
    /// bind order.
    pub fn tenant_metrics(&self) -> Vec<(String, ServeMetrics)> {
        self.shared
            .tenants
            .iter()
            .map(|t| (t.spec.id.clone(), t.metrics()))
            .collect()
    }

    /// Re-scans the reload source and atomically swaps to the newest
    /// committed generation — single-tenant form, reloading the first
    /// (only) tenant. Returns `(generation, changed)`; in-flight queries
    /// finish on their pinned generation either way. Also triggered over
    /// the wire by [`QueryRequest::Reload`] (and by SIGHUP in the CLI).
    pub fn reload(&self) -> Result<(u64, bool), ReloadError> {
        try_reload(&self.shared.tenants[0])
    }

    /// Reloads every tenant independently (the SIGHUP path in multi
    /// mode): one tenant's store error does not stop the others.
    pub fn reload_all(&self) -> Vec<(String, Result<(u64, bool), ReloadError>)> {
        self.shared
            .tenants
            .iter()
            .map(|t| (t.spec.id.clone(), try_reload(t)))
            .collect()
    }

    /// Stops accepting, closes every live connection, and joins all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Join the accept loop first: afterwards the registry is complete
        // (and the queue's sender is dropped), so closing every
        // registered stream unblocks both in-service readers and queued
        // connections, and the workers drain to Disconnected.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// An admin handle to one tenant of a running [`Server`]: per-tenant
/// generation, metrics, and reload without going over the wire.
pub struct TenantHandle {
    tenant: Arc<TenantServing>,
}

impl TenantHandle {
    /// The tenant id this handle is scoped to.
    pub fn id(&self) -> &str {
        &self.tenant.spec.id
    }

    /// This tenant's serving generation.
    pub fn generation(&self) -> u64 {
        self.tenant.state.read().unwrap().generation
    }

    /// This tenant's point-in-time metrics.
    pub fn metrics(&self) -> ServeMetrics {
        self.tenant.metrics()
    }

    /// Reloads only this tenant; other tenants' generations are
    /// untouched and their in-flight queries undisturbed.
    pub fn reload(&self) -> Result<(u64, bool), ReloadError> {
        try_reload(&self.tenant)
    }
}

fn try_reload(tenant: &TenantServing) -> Result<(u64, bool), ReloadError> {
    let src = tenant
        .reload_source
        .as_ref()
        .ok_or(ReloadError::Unsupported)?;
    let _guard = tenant.reload_lock.lock().unwrap();
    let current = tenant.state.read().unwrap().generation;
    let (generation, snapshot) =
        dim_store::load_latest_snapshot(&src.root, &src.request).map_err(ReloadError::Store)?;
    if generation == current {
        return Ok((generation, false));
    }
    let sketch = Sketch::from_snapshot(src.num_nodes, snapshot);
    *tenant.state.write().unwrap() = Arc::new(SketchState { generation, sketch });
    tenant.reloads.fetch_add(1, Ordering::Relaxed);
    Ok((generation, true))
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, queue: Sender<(u64, TcpStream)>) {
    let mut next_id = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let mut conns = shared.conns.lock().unwrap();
                if conns.len() >= shared.max_conns {
                    drop(conns);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    let resp = QueryResponse::Error {
                        code: ERR_OVERLOADED,
                        message: format!(
                            "connection limit reached ({} live)",
                            shared.max_conns
                        ),
                    };
                    let _ = write_frame(&mut stream, resp.opcode(), &resp.encode());
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    let id = next_id;
                    next_id += 1;
                    conns.insert(id, clone);
                    drop(conns);
                    if queue.send((id, stream)).is_err() {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
}

/// One worker: pull connections off the shared queue and serve each to
/// completion, then reap its registry entry.
fn worker_loop(queue: Arc<Mutex<Receiver<(u64, TcpStream)>>>, shared: Arc<Shared>) {
    loop {
        let next = {
            let queue = queue.lock().unwrap();
            queue.recv_timeout(WORKER_POLL)
        };
        match next {
            Ok((id, stream)) => {
                serve_connection(stream, &shared);
                if let Some(conn) = shared.conns.lock().unwrap().remove(&id) {
                    let _ = conn.shutdown(Shutdown::Both);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Answers one decoded query against a pinned generation, recording
/// latency and the query count on the owning tenant. Spread queries
/// inside a batch evaluate through the batch's reusable [`SketchCursors`]
/// (the allocation amortization `REQ_BATCH` exists for).
fn answer_query(
    shared: &Shared,
    tenant: &TenantServing,
    state: &SketchState,
    req: &QueryRequest,
    cursors: Option<&mut SketchCursors<'_>>,
) -> QueryResponse {
    let start = Instant::now();
    let mut resp = match (req, cursors) {
        (QueryRequest::Spread { seeds }, Some(cursors)) => QueryResponse::Spread {
            covered: cursors.seed_set_coverage(seeds),
            theta: state.sketch.theta(),
            num_nodes: state.sketch.num_nodes() as u64,
        },
        (req, _) => state.sketch.answer(req),
    };
    let answered = tenant.queries.fetch_add(1, Ordering::Relaxed) + 1;
    tenant
        .latency
        .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    if let QueryResponse::Stats(s) = &mut resp {
        s.queries_answered = answered;
        s.generation = state.generation;
        s.shed = shared.shed.load(Ordering::Relaxed);
        s.quota_shed = tenant.quota_shed.load(Ordering::Relaxed);
        s.p50_us = tenant.latency.quantile(0.5);
        s.p95_us = tenant.latency.quantile(0.95);
        s.p99_us = tenant.latency.quantile(0.99);
    }
    resp
}

/// Handles one AUTH frame; `Err` closes the connection after the reply.
fn handle_auth(
    shared: &Shared,
    version: u8,
    id: &str,
    auth: &dim_cluster::auth::Digest,
) -> Result<(Arc<TenantServing>, QueryResponse), QueryResponse> {
    if !shared.auth_required {
        // Single-tenant server: the handshake is not part of its
        // protocol, but an old connection survives the probe.
        return Err(QueryResponse::Error {
            code: ERR_UNSUPPORTED,
            message: "server is single-tenant; no auth required".into(),
        });
    }
    if version != AUTH_VERSION {
        return Err(QueryResponse::Error {
            code: ERR_UNSUPPORTED,
            message: format!("auth version {version} unsupported (speak {AUTH_VERSION})"),
        });
    }
    let tenant = match shared.find_tenant(id) {
        Some(t) => t,
        None => {
            let (code, message) = failure_error(id, crate::tenant::AuthFailure::UnknownTenant);
            return Err(QueryResponse::Error { code, message });
        }
    };
    if !dim_cluster::auth::verify_digest(auth, &tenant.spec.auth) {
        let (code, message) = failure_error(id, crate::tenant::AuthFailure::BadToken);
        return Err(QueryResponse::Error { code, message });
    }
    let generation = tenant.state.read().unwrap().generation;
    Ok((
        Arc::clone(tenant),
        QueryResponse::AuthOk {
            tenant: id.to_string(),
            generation,
        },
    ))
}

/// The typed refusal for a tripped per-tenant quota; counted on the
/// tenant, connection survives.
fn quota_refused(tenant: &TenantServing, limit: &str) -> QueryResponse {
    tenant.quota_shed.fetch_add(1, Ordering::Relaxed);
    QueryResponse::Error {
        code: ERR_QUOTA,
        message: format!("tenant {:?} over its {limit} quota", tenant.spec.id),
    }
}

/// One connection: a strict request/reply loop until EOF, a wire error,
/// or server shutdown (which closes the stream under us). On a
/// multi-tenant server the first frame must be AUTH; failed auth (or a
/// query before it) gets its typed error and the connection closes.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let mut tenant: Option<Arc<TenantServing>> = if shared.auth_required {
        None
    } else {
        Some(Arc::clone(&shared.tenants[0]))
    };
    if let Some(t) = &tenant {
        t.connections.fetch_add(1, Ordering::Relaxed);
    }
    let mut close = false;
    while !close {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => break, // EOF, shutdown, or a framing violation
        };
        let malformed = || QueryResponse::Error {
            code: ERR_MALFORMED,
            message: format!("malformed request frame (opcode {opcode:#04x})"),
        };
        let (resp_opcode, payload) = if opcode == REQ_AUTH {
            let resp = match QueryRequest::decode(opcode, &body) {
                Some(QueryRequest::Auth {
                    version,
                    tenant: id,
                    auth,
                }) => {
                    if tenant.is_some() && shared.auth_required {
                        QueryResponse::Error {
                            code: ERR_UNSUPPORTED,
                            message: "connection is already authenticated".into(),
                        }
                    } else {
                        match handle_auth(shared, version, &id, &auth) {
                            Ok((t, ok)) => {
                                t.connections.fetch_add(1, Ordering::Relaxed);
                                tenant = Some(t);
                                ok
                            }
                            Err(resp) => {
                                // Failed auth on an auth-required server
                                // ends the connection; a single-tenant
                                // server just reports the probe.
                                close = shared.auth_required;
                                resp
                            }
                        }
                    }
                }
                _ => {
                    close = shared.auth_required && tenant.is_none();
                    malformed()
                }
            };
            (resp.opcode(), resp.encode())
        } else if tenant.is_none() {
            // A query before AUTH on a multi-tenant server.
            let resp = QueryResponse::Error {
                code: ERR_UNAUTHORIZED,
                message: "authenticate first (REQ_AUTH)".into(),
            };
            close = true;
            (resp.opcode(), resp.encode())
        } else if opcode == REQ_BATCH {
            let t = tenant.as_ref().unwrap();
            match decode_batch(&body) {
                Some(requests) => {
                    let max_batch = t.spec.quota.max_batch;
                    if max_batch > 0 && requests.len() > max_batch as usize {
                        let resp = quota_refused(t, "batch-size");
                        (resp.opcode(), resp.encode())
                    } else {
                        match t.admit(requests.len() as u64) {
                            Ok(_guard) => {
                                // The whole batch answers against one
                                // pinned generation and one set of
                                // reusable cursors.
                                let state = t.pinned();
                                let mut cursors = SketchCursors::new(state.sketch.shards());
                                let responses: Vec<QueryResponse> = requests
                                    .iter()
                                    .map(|req| {
                                        answer_query(shared, t, &state, req, Some(&mut cursors))
                                    })
                                    .collect();
                                t.batches.fetch_add(1, Ordering::Relaxed);
                                (RESP_BATCH, encode_response_batch(&responses))
                            }
                            Err(limit) => {
                                let resp = quota_refused(t, limit);
                                (resp.opcode(), resp.encode())
                            }
                        }
                    }
                }
                None => {
                    let resp = malformed();
                    (resp.opcode(), resp.encode())
                }
            }
        } else {
            let t = tenant.as_ref().unwrap();
            let resp = match QueryRequest::decode(opcode, &body) {
                Some(QueryRequest::Reload) => match try_reload(t) {
                    Ok((generation, changed)) => QueryResponse::Reload {
                        generation,
                        changed,
                    },
                    Err(e) => QueryResponse::Error {
                        code: ERR_RELOAD,
                        message: e.to_string(),
                    },
                },
                Some(req) => match t.admit(1) {
                    Ok(_guard) => {
                        let state = t.pinned();
                        answer_query(shared, t, &state, &req, None)
                    }
                    Err(limit) => quota_refused(t, limit),
                },
                None => malformed(),
            };
            (resp.opcode(), resp.encode())
        };
        if write_frame(&mut stream, resp_opcode, &payload).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    if let Some(t) = &tenant {
        t.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QueryClient;
    use crate::proto::encode_batch;
    use dim_cluster::SamplerSpec;
    use dim_coverage::PooledSets;
    use std::sync::atomic::AtomicUsize;

    /// The paper's Fig. 2 instance split over two shards.
    fn sketch() -> Sketch {
        let shards = vec![
            CoverageShard::from_records(5, [&[0u32][..], &[1, 2], &[0, 2]]),
            CoverageShard::from_records(5, [&[1u32, 4][..], &[0], &[1, 3]]),
        ];
        Sketch::new(5, 6, 10, shards)
    }

    #[test]
    fn spread_and_topk_match_direct_evaluation() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let reference = sketch();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let (covered, spread) = client.spread(&[0, 1]).unwrap();
        assert_eq!(covered, seed_set_coverage(reference.shards(), &[0, 1]));
        assert_eq!(covered, 6);
        assert!((spread - 5.0).abs() < 1e-12);
        let top = client.top_k(2, &[], &[]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[], &[]);
        assert_eq!(top.seeds, direct.seeds);
        assert_eq!(top.marginals, direct.marginals);
        assert_eq!(top.covered, direct.covered);
        let top = client.top_k(2, &[4], &[1]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[4], &[1]);
        assert_eq!(top.seeds, direct.seeds);
        server.shutdown();
    }

    #[test]
    fn stats_reports_sketch_shape_and_query_count() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        client.spread(&[0]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_nodes, 5);
        assert_eq!(stats.theta, 6);
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.total_rr_size, 10);
        assert_eq!(stats.queries_answered, 2); // the spread query + this one
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.shed, 0);
        // Both answered queries are in the histogram by now.
        assert!(stats.p99_us >= stats.p50_us);
        assert_eq!(server.queries_answered(), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_typed_error_and_connection_survives() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Truncated Spread body: count says 5 ids, none follow.
        let mut body = Vec::new();
        dim_cluster::ops::put_u64(&mut body, 5);
        write_frame(&mut stream, crate::proto::REQ_SPREAD, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &resp) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
            other => panic!("expected error response, got {other:?}"),
        }
        // The connection still answers well-formed queries afterwards.
        let req = QueryRequest::Stats;
        write_frame(&mut stream, req.opcode(), &req.encode()).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode(op, &resp),
            Some(QueryResponse::Stats(_))
        ));
        assert_eq!(server.queries_answered(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let addr = server.local_addr();
        let mut client = QueryClient::connect(addr).unwrap();
        client.spread(&[0]).unwrap();
        server.shutdown();
        // The server side is gone: the next query fails instead of hanging.
        assert!(client.spread(&[0]).is_err());
        assert!(QueryClient::connect(addr).is_err() || {
            // A racing TCP stack may still accept; the query must not.
            let mut c = QueryClient::connect(addr).unwrap();
            c.spread(&[0]).is_err()
        });
    }

    #[test]
    fn sketch_rejects_mismatched_domain() {
        let shard = CoverageShard::from_records(4, [&[0u32][..]]);
        let result = std::panic::catch_unwind(|| Sketch::new(5, 1, 1, vec![shard]));
        assert!(result.is_err());
    }

    #[test]
    fn batch_replies_equal_singles_in_request_order() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut single = QueryClient::connect(server.local_addr()).unwrap();
        let mut batched = QueryClient::connect(server.local_addr()).unwrap();
        let requests = vec![
            QueryRequest::Spread { seeds: vec![0, 1] },
            QueryRequest::TopK {
                k: 2,
                include: vec![],
                exclude: vec![1],
            },
            QueryRequest::Spread { seeds: vec![] },
            QueryRequest::Spread { seeds: vec![4] },
        ];
        let replies = batched.batch(&requests).unwrap();
        assert_eq!(replies.len(), requests.len());
        for (req, got) in requests.iter().zip(&replies) {
            // Stats replies embed counters, so compare non-stats queries
            // only — and they must match a fresh single-shot answer.
            let expect = single.request(req).unwrap();
            assert_eq!(got, &expect, "{req:?}");
        }
        // One frame, four queries.
        assert_eq!(server.metrics().batches_answered, 1);
        assert_eq!(server.queries_answered(), 4 + requests.len() as u64);
        server.shutdown();
    }

    #[test]
    fn batch_stats_count_every_entry() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let replies = client
            .batch(&[
                QueryRequest::Spread { seeds: vec![0] },
                QueryRequest::Stats,
            ])
            .unwrap();
        match &replies[1] {
            QueryResponse::Stats(s) => {
                assert_eq!(s.queries_answered, 2);
                assert_eq!(s.generation, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn reload_inside_batch_is_malformed() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut body = Vec::new();
        dim_cluster::ops::put_u32(&mut body, 1);
        body.push(crate::proto::REQ_RELOAD);
        dim_cluster::ops::put_u32(&mut body, 0);
        write_frame(&mut stream, REQ_BATCH, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &resp) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
            other => panic!("expected malformed error, got {other:?}"),
        }
        assert_eq!(server.queries_answered(), 0);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let server = Server::start_with(
            "127.0.0.1:0",
            sketch(),
            ServeOptions {
                workers: 2,
                max_conns: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut first = QueryClient::connect(addr).unwrap();
        first.spread(&[0]).unwrap(); // guarantees registration
        // The second connection is shed with a typed reply, then closed.
        let mut second = TcpStream::connect(addr).unwrap();
        let (op, body) = read_frame(&mut second).unwrap();
        match QueryResponse::decode(op, &body) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_OVERLOADED),
            other => panic!("expected overload error, got {other:?}"),
        }
        assert_eq!(server.metrics().shed, 1);
        // The first connection is unaffected, and its stats see the shed.
        let stats = first.stats().unwrap();
        assert_eq!(stats.shed, 1);
        // Releasing the slot re-admits new connections.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(mut c) = QueryClient::connect(addr) {
                if c.spread(&[0]).is_ok() {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "slot never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn finished_connections_are_reaped() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        for _ in 0..5 {
            let mut client = QueryClient::connect(server.local_addr()).unwrap();
            client.spread(&[0]).unwrap();
            drop(client);
        }
        // Workers reap asynchronously after EOF; the registry must drain
        // back to zero instead of growing per connection.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.live_connections() > 0 {
            assert!(Instant::now() < deadline, "connections never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.queries_answered(), 5);
        server.shutdown();
    }

    #[test]
    fn reload_without_store_is_typed_error() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        assert!(matches!(server.reload(), Err(ReloadError::Unsupported)));
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let err = client.reload().unwrap_err();
        assert!(err.to_string().contains("4"), "{err}");
        // The connection survives the failed reload.
        client.spread(&[0]).unwrap();
        server.shutdown();
    }

    /// Writes a complete one-shard snapshot whose single RR set is
    /// `{mark}` — so `spread([mark]) == 1` identifies the generation.
    fn write_generation(root: &std::path::Path, mark: u32) -> u64 {
        let (id, dir) = dim_store::begin_generation(root).unwrap();
        let mut elements = PooledSets::new();
        elements.push(&[mark]);
        let header = dim_store::ShardHeader {
            fingerprint: 0xabcd,
            sampler: SamplerSpec::Subsim,
            seed: mark as u64,
            theta: 1,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements: 1,
            edges_examined: 0,
        };
        dim_store::write_shard(&dir, &header, &elements).unwrap();
        dim_store::commit_generation(&dir, id).unwrap();
        id
    }

    #[test]
    fn wire_reload_swaps_to_latest_generation() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "dim-serve-reload-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let request = SnapshotRequest {
            fingerprint: 0xabcd,
            sampler: SamplerSpec::Subsim,
            shard_count: None,
        };
        let gen1 = write_generation(&root, 0);
        let (id, snapshot) = dim_store::load_latest_snapshot(&root, &request).unwrap();
        assert_eq!(id, gen1);
        let server = Server::start_with(
            "127.0.0.1:0",
            Sketch::from_snapshot(5, snapshot),
            ServeOptions {
                generation: id,
                reload: Some(ReloadSource {
                    root: root.clone(),
                    request,
                    num_nodes: 5,
                }),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.spread(&[0]).unwrap().0, 1);
        assert_eq!(client.spread(&[3]).unwrap().0, 0);

        // Nothing new yet: reload reports unchanged.
        assert_eq!(client.reload().unwrap(), (gen1, false));

        // A new committed generation swaps in without dropping the
        // connection; answers now reflect the new sketch.
        let gen2 = write_generation(&root, 3);
        assert_eq!(client.reload().unwrap(), (gen2, true));
        assert_eq!(server.generation(), gen2);
        assert_eq!(client.spread(&[0]).unwrap().0, 0);
        assert_eq!(client.spread(&[3]).unwrap().0, 1);
        assert_eq!(client.stats().unwrap().generation, gen2);
        assert_eq!(server.metrics().reloads, 1);
        server.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    /// A second, distinguishable instance: every RR set is `{4}`.
    fn other_sketch() -> Sketch {
        let shards = vec![CoverageShard::from_records(
            5,
            [&[4u32][..], &[4], &[4], &[4]],
        )];
        Sketch::new(5, 4, 4, shards)
    }

    fn tenant_spec(id: &str, token: &str, quota: TenantQuota) -> TenantSpec {
        TenantSpec {
            id: id.into(),
            auth: dim_cluster::auth::token_digest(token),
            store: None,
            graph: None,
            quota,
        }
    }

    fn two_tenant_server(quota_a: TenantQuota) -> Server {
        Server::start_multi(
            "127.0.0.1:0",
            vec![
                TenantBind {
                    spec: tenant_spec("acme", "acme-secret", quota_a),
                    sketch: sketch(),
                    generation: 0,
                    reload: None,
                },
                TenantBind {
                    spec: tenant_spec("globex", "globex-secret", TenantQuota::default()),
                    sketch: other_sketch(),
                    generation: 0,
                    reload: None,
                },
            ],
            ServeOptions::default(),
        )
        .unwrap()
    }

    fn raw_request(stream: &mut TcpStream, req: &QueryRequest) -> QueryResponse {
        write_frame(stream, req.opcode(), &req.encode()).unwrap();
        let (op, body) = read_frame(stream).unwrap();
        QueryResponse::decode(op, &body).unwrap()
    }

    fn auth_frame(tenant: &str, token: &str) -> QueryRequest {
        crate::auth::Credentials::new(tenant, token).auth_request()
    }

    #[test]
    fn multi_tenant_scopes_answers_and_rejects_bad_credentials() {
        let server = two_tenant_server(TenantQuota::default());
        let addr = server.local_addr();

        // A query before AUTH is refused with the typed error, then the
        // connection closes.
        let mut early = TcpStream::connect(addr).unwrap();
        match raw_request(&mut early, &QueryRequest::Stats) {
            QueryResponse::Error { code, .. } => assert_eq!(code, crate::proto::ERR_UNAUTHORIZED),
            other => panic!("expected unauthorized, got {other:?}"),
        }
        assert!(read_frame(&mut early).is_err(), "connection must close");

        // Wrong token and unknown tenant each get their distinct error.
        let mut bad = TcpStream::connect(addr).unwrap();
        match raw_request(&mut bad, &auth_frame("acme", "not-the-secret")) {
            QueryResponse::Error { code, .. } => assert_eq!(code, crate::proto::ERR_UNAUTHORIZED),
            other => panic!("expected unauthorized, got {other:?}"),
        }
        let mut nobody = TcpStream::connect(addr).unwrap();
        match raw_request(&mut nobody, &auth_frame("nobody", "x")) {
            QueryResponse::Error { code, .. } => {
                assert_eq!(code, crate::proto::ERR_UNKNOWN_TENANT)
            }
            other => panic!("expected unknown tenant, got {other:?}"),
        }

        // Authenticated tenants get their own sketches.
        let mut acme = TcpStream::connect(addr).unwrap();
        match raw_request(&mut acme, &auth_frame("acme", "acme-secret")) {
            QueryResponse::AuthOk { tenant, generation } => {
                assert_eq!(tenant, "acme");
                assert_eq!(generation, 0);
            }
            other => panic!("expected AuthOk, got {other:?}"),
        }
        let mut globex = TcpStream::connect(addr).unwrap();
        assert!(matches!(
            raw_request(&mut globex, &auth_frame("globex", "globex-secret")),
            QueryResponse::AuthOk { .. }
        ));
        // acme's sketch covers node 0 in 3 of 6 sets; globex's in none.
        let spread = QueryRequest::Spread { seeds: vec![0] };
        assert_eq!(
            raw_request(&mut acme, &spread),
            QueryResponse::Spread {
                covered: 3,
                theta: 6,
                num_nodes: 5
            }
        );
        assert_eq!(
            raw_request(&mut globex, &spread),
            QueryResponse::Spread {
                covered: 0,
                theta: 4,
                num_nodes: 5
            }
        );
        // Per-tenant stats: each tenant sees only its own query count.
        match raw_request(&mut acme, &QueryRequest::Stats) {
            QueryResponse::Stats(s) => {
                assert_eq!(s.queries_answered, 2);
                assert_eq!(s.theta, 6);
                assert_eq!(s.quota_shed, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Admin view: both tenants accounted separately, aggregate sums.
        let per_tenant = server.tenant_metrics();
        assert_eq!(per_tenant.len(), 2);
        assert_eq!(per_tenant[0].0, "acme");
        assert_eq!(per_tenant[0].1.queries_answered, 2);
        assert_eq!(per_tenant[1].1.queries_answered, 1);
        assert_eq!(server.metrics().queries_answered, 3);
        server.shutdown();
    }

    #[test]
    fn auth_version_and_double_auth_are_refused() {
        let server = two_tenant_server(TenantQuota::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Future auth version: typed unsupported, connection closes.
        let req = QueryRequest::Auth {
            version: AUTH_VERSION + 1,
            tenant: "acme".into(),
            auth: dim_cluster::auth::token_digest("acme-secret"),
        };
        match raw_request(&mut stream, &req) {
            QueryResponse::Error { code, .. } => assert_eq!(code, ERR_UNSUPPORTED),
            other => panic!("expected unsupported, got {other:?}"),
        }
        assert!(read_frame(&mut stream).is_err());
        // Re-auth on an authenticated connection is refused but survives.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        assert!(matches!(
            raw_request(&mut stream, &auth_frame("acme", "acme-secret")),
            QueryResponse::AuthOk { .. }
        ));
        match raw_request(&mut stream, &auth_frame("globex", "globex-secret")) {
            QueryResponse::Error { code, .. } => assert_eq!(code, ERR_UNSUPPORTED),
            other => panic!("expected unsupported, got {other:?}"),
        }
        assert!(matches!(
            raw_request(&mut stream, &QueryRequest::Stats),
            QueryResponse::Stats(_)
        ));
        server.shutdown();
    }

    #[test]
    fn single_tenant_server_reports_auth_probe_and_survives() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        match raw_request(&mut stream, &auth_frame("anyone", "x")) {
            QueryResponse::Error { code, .. } => assert_eq!(code, ERR_UNSUPPORTED),
            other => panic!("expected unsupported, got {other:?}"),
        }
        // The probe does not cost the connection.
        assert!(matches!(
            raw_request(&mut stream, &QueryRequest::Stats),
            QueryResponse::Stats(_)
        ));
        server.shutdown();
    }

    #[test]
    fn batch_quota_sheds_typed_without_closing() {
        let server = two_tenant_server(TenantQuota {
            max_batch: 2,
            ..TenantQuota::default()
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        assert!(matches!(
            raw_request(&mut stream, &auth_frame("acme", "acme-secret")),
            QueryResponse::AuthOk { .. }
        ));
        let spread = QueryRequest::Spread { seeds: vec![0] };
        let over = encode_batch(&[spread.clone(), spread.clone(), spread.clone()]);
        write_frame(&mut stream, REQ_BATCH, &over).unwrap();
        let (op, body) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &body).unwrap() {
            QueryResponse::Error { code, message } => {
                assert_eq!(code, ERR_QUOTA);
                assert!(message.contains("batch-size"), "{message}");
            }
            other => panic!("expected quota error, got {other:?}"),
        }
        // The connection survives and an in-quota batch answers.
        let ok = encode_batch(&[spread.clone(), spread]);
        write_frame(&mut stream, REQ_BATCH, &ok).unwrap();
        let (op, _) = read_frame(&mut stream).unwrap();
        assert_eq!(op, RESP_BATCH);
        // The shed is accounted on the tenant, not globally.
        let m = server.tenant_metrics();
        assert_eq!(m[0].1.quota_shed, 1);
        assert_eq!(m[1].1.quota_shed, 0);
        assert_eq!(server.metrics().shed, 0);
        assert_eq!(server.metrics().quota_shed, 1);
        server.shutdown();
    }

    #[test]
    fn qps_bucket_and_in_flight_ceiling_admit_and_refuse() {
        // Unit-level: deterministic without wall-clock races.
        let t = TenantServing::new(
            tenant_spec(
                "a",
                "s",
                TenantQuota {
                    max_in_flight: 1,
                    ..TenantQuota::default()
                },
            ),
            sketch(),
            0,
            None,
        );
        let g1 = t.admit(1);
        assert!(g1.is_ok());
        assert!(matches!(t.admit(1), Err("in-flight")));
        drop(g1);
        assert!(t.admit(1).is_ok());

        // Token bucket: a burst of max_qps, then refusal until refill.
        let mut bucket = TokenBucket::new(2);
        assert!(bucket.admit(2, 1));
        assert!(bucket.admit(2, 1));
        assert!(!bucket.admit(2, 1), "burst exhausted");
        // An unlimited rate never refuses.
        let mut open = TokenBucket::new(0);
        for _ in 0..100 {
            assert!(open.admit(0, 1_000));
        }
        // A batch charges its entry count at once.
        let mut batchy = TokenBucket::new(10);
        assert!(batchy.admit(10, 10));
        assert!(!batchy.admit(10, 1));
    }

    #[test]
    fn qps_quota_sheds_over_the_wire() {
        let server = two_tenant_server(TenantQuota {
            max_qps: 1,
            ..TenantQuota::default()
        });
        let mut acme = TcpStream::connect(server.local_addr()).unwrap();
        assert!(matches!(
            raw_request(&mut acme, &auth_frame("acme", "acme-secret")),
            QueryResponse::AuthOk { .. }
        ));
        let spread = QueryRequest::Spread { seeds: vec![0] };
        // One second of burst = one query; back-to-back requests must
        // trip the bucket at least once (refill would need >3 s between
        // these frames).
        let mut refused = 0;
        let mut answered = 0;
        for _ in 0..4 {
            match raw_request(&mut acme, &spread) {
                QueryResponse::Spread { .. } => answered += 1,
                QueryResponse::Error { code, message } => {
                    assert_eq!(code, ERR_QUOTA);
                    assert!(message.contains("queries/sec"), "{message}");
                    refused += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(answered >= 1, "the burst token must admit the first query");
        assert!(refused >= 1, "the bucket never refused");
        // The other tenant is unaffected.
        let mut globex = TcpStream::connect(server.local_addr()).unwrap();
        assert!(matches!(
            raw_request(&mut globex, &auth_frame("globex", "globex-secret")),
            QueryResponse::AuthOk { .. }
        ));
        for _ in 0..5 {
            assert!(matches!(
                raw_request(&mut globex, &spread),
                QueryResponse::Spread { .. }
            ));
        }
        server.shutdown();
    }

    #[test]
    fn start_multi_rejects_bad_binds() {
        let dup = Server::start_multi(
            "127.0.0.1:0",
            vec![
                TenantBind {
                    spec: tenant_spec("a", "x", TenantQuota::default()),
                    sketch: sketch(),
                    generation: 0,
                    reload: None,
                },
                TenantBind {
                    spec: tenant_spec("a", "y", TenantQuota::default()),
                    sketch: sketch(),
                    generation: 0,
                    reload: None,
                },
            ],
            ServeOptions::default(),
        );
        assert!(dup.is_err());
        assert!(Server::start_multi("127.0.0.1:0", vec![], ServeOptions::default()).is_err());
    }

    #[test]
    fn batch_frame_opcode_roundtrip_over_wire() {
        // Drive REQ_BATCH at the frame level (no client sugar) to pin the
        // wire contract: one frame in, one RESP_BATCH frame out.
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let body = encode_batch(&[
            QueryRequest::Spread { seeds: vec![0] },
            QueryRequest::Spread { seeds: vec![1] },
        ]);
        write_frame(&mut stream, REQ_BATCH, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        assert_eq!(op, RESP_BATCH);
        let replies = crate::proto::decode_response_batch(&resp).unwrap();
        assert_eq!(
            replies,
            vec![
                QueryResponse::Spread {
                    covered: 3,
                    theta: 6,
                    num_nodes: 5
                },
                QueryResponse::Spread {
                    covered: 3,
                    theta: 6,
                    num_nodes: 5
                },
            ]
        );
        server.shutdown();
    }
}
