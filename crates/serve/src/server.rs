//! The query server: a bounded worker pool over a shared accept queue,
//! serving a hot-swappable generation-tagged [`Sketch`].
//!
//! # Architecture
//!
//! One accept thread owns the listener. Each accepted connection is
//! registered (so shutdown can unblock its reader) and pushed onto an
//! mpsc queue; a fixed pool of worker threads pulls connections off the
//! queue and runs each request/reply loop to completion. The pool bounds
//! CPU concurrency — `workers` connections are served at once, further
//! accepted connections wait in the queue — while `max_conns` bounds
//! admission: past it, a connection gets one typed
//! `RESP_ERROR`/[`ERR_OVERLOADED`] reply and is closed (load shedding,
//! counted in [`ServeMetrics::shed`]).
//!
//! # Hot reload
//!
//! The serving sketch lives behind `RwLock<Arc<SketchState>>`. Every
//! request (or batch) clones the `Arc` once — pinning a generation — and
//! answers entirely against it, so a concurrent [`Server::reload`] swaps
//! the pointer without ever stalling or corrupting an in-flight query:
//! readers on the old generation finish there; the next request sees the
//! new one. Reloads re-scan a generation store
//! ([`dim_store::load_latest_snapshot`]) and swap only when a newer
//! committed generation exists.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dim_cluster::wire::{read_frame, write_frame};
use dim_coverage::{constrained_greedy, seed_set_coverage, CoverageShard, SketchCursors};
use dim_store::{Snapshot, SnapshotRequest, StoreError};

use crate::metrics::{LatencyHistogram, ServeMetrics};
use crate::proto::{
    decode_batch, encode_response_batch, QueryRequest, QueryResponse, SketchStats, ERR_MALFORMED,
    ERR_OVERLOADED, ERR_RELOAD, ERR_UNSUPPORTED, REQ_BATCH, RESP_BATCH,
};

/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How often an idle worker polls the stop flag.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// An immutable in-memory RR sketch: the per-machine coverage shards of
/// one sampling run plus the scalars queries need. Queries evaluate
/// through read-only [`dim_coverage::QueryCursor`]s, so one sketch serves
/// any number of concurrent connections without locking.
pub struct Sketch {
    shards: Vec<CoverageShard>,
    num_nodes: usize,
    theta: u64,
    total_rr_size: u64,
}

impl Sketch {
    /// Wraps prepared coverage shards. Panics if any shard's set domain
    /// differs from `num_nodes` or its transpose index is stale.
    pub fn new(num_nodes: usize, theta: u64, total_rr_size: u64, shards: Vec<CoverageShard>) -> Self {
        for shard in &shards {
            assert_eq!(shard.num_sets(), num_nodes, "shard domain != num_nodes");
            assert!(!shard.needs_prepare(), "shard index is stale");
        }
        Sketch {
            shards,
            num_nodes,
            theta,
            total_rr_size,
        }
    }

    /// Builds the sketch from a validated dim-store snapshot; `num_nodes`
    /// comes from the graph the snapshot was checked against.
    pub fn from_snapshot(num_nodes: usize, snapshot: Snapshot) -> Self {
        let theta = snapshot.theta;
        let total_rr_size = snapshot.total_size();
        let num_sets = snapshot.num_sets as usize;
        let shards: Vec<CoverageShard> = snapshot
            .shards
            .into_iter()
            .map(|s| CoverageShard::from_pooled(num_sets, s.elements, s.index))
            .collect();
        Sketch::new(num_nodes, theta, total_rr_size, shards)
    }

    /// Node count `n` of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total RR sets in the sketch (θ).
    pub fn theta(&self) -> u64 {
        self.theta
    }

    /// The coverage shards, for direct (in-process) evaluation.
    pub fn shards(&self) -> &[CoverageShard] {
        &self.shards
    }

    /// Answers one query against the frozen sketch. [`QueryRequest::Reload`]
    /// is a server-level operation, not a sketch query, and returns a
    /// typed [`ERR_UNSUPPORTED`] error here.
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::Spread { seeds } => QueryResponse::Spread {
                covered: seed_set_coverage(&self.shards, seeds),
                theta: self.theta,
                num_nodes: self.num_nodes as u64,
            },
            QueryRequest::TopK {
                k,
                include,
                exclude,
            } => {
                let r = constrained_greedy(&self.shards, *k as usize, include, exclude);
                QueryResponse::TopK {
                    seeds: r.seeds,
                    marginals: r.marginals,
                    covered: r.covered,
                    theta: self.theta,
                    num_nodes: self.num_nodes as u64,
                }
            }
            QueryRequest::Stats => QueryResponse::Stats(SketchStats {
                num_nodes: self.num_nodes as u64,
                theta: self.theta,
                shard_count: self.shards.len() as u32,
                total_rr_size: self.total_rr_size,
                queries_answered: 0, // filled in by the server
                ..SketchStats::default()
            }),
            QueryRequest::Reload => QueryResponse::Error {
                code: ERR_UNSUPPORTED,
                message: "reload is a server operation, not a sketch query".into(),
            },
        }
    }
}

/// Where a server re-reads its sketch from on [`Server::reload`].
pub struct ReloadSource {
    /// Generation store root (see `dim_store::generation`).
    pub root: PathBuf,
    /// Provenance every loaded snapshot must match.
    pub request: SnapshotRequest,
    /// Node count of the graph the snapshots describe.
    pub num_nodes: usize,
}

/// Server tuning knobs; `Default` matches the PR-5 prototype's behavior
/// (no reload source, generation 0) with bounded threading.
pub struct ServeOptions {
    /// Worker threads — connections served concurrently.
    pub workers: usize,
    /// Admission limit: connections past this are shed with
    /// [`ERR_OVERLOADED`].
    pub max_conns: usize,
    /// Generation id of the initial sketch (0 for a flat/unversioned
    /// store).
    pub generation: u64,
    /// Store to re-scan on reload; `None` makes reload a typed error.
    pub reload: Option<ReloadSource>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 8,
            max_conns: 1024,
            generation: 0,
            reload: None,
        }
    }
}

/// Why a [`Server::reload`] did not swap sketches.
#[derive(Debug)]
pub enum ReloadError {
    /// The server was started without a [`ReloadSource`].
    Unsupported,
    /// Scanning or loading the store failed; the serving sketch is
    /// unchanged.
    Store(StoreError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Unsupported => write!(f, "server has no snapshot store to reload from"),
            ReloadError::Store(e) => write!(f, "reload failed: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// One generation of the serving sketch. Requests pin a generation by
/// cloning the `Arc` and answer entirely against it.
struct SketchState {
    generation: u64,
    sketch: Sketch,
}

struct Shared {
    state: RwLock<Arc<SketchState>>,
    reload_source: Option<ReloadSource>,
    /// Serializes reloads (the state lock is only held for the swap).
    reload_lock: Mutex<()>,
    stop: AtomicBool,
    queries: AtomicU64,
    batches: AtomicU64,
    reloads: AtomicU64,
    shed: AtomicU64,
    latency: LatencyHistogram,
    /// Clones of every registered stream keyed by connection id, so
    /// shutdown can unblock readers; workers reap entries as their
    /// connections finish, keeping the map bounded by live connections.
    conns: Mutex<HashMap<u64, TcpStream>>,
    max_conns: usize,
}

impl Shared {
    /// Pins the current generation.
    fn pinned(&self) -> Arc<SketchState> {
        Arc::clone(&self.state.read().unwrap())
    }
}

/// A running `dim serve` instance: one accept thread plus a bounded
/// worker pool, all sharing the (hot-swappable) sketch read-only.
///
/// Shutdown is deterministic: [`Server::shutdown`] (or drop) stops the
/// accept loop, closes every registered connection to unblock its reader,
/// and joins all threads — no orphan threads or sockets survive it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `sketch`
    /// with default [`ServeOptions`].
    pub fn start(addr: impl ToSocketAddrs, sketch: Sketch) -> io::Result<Server> {
        Server::start_with(addr, sketch, ServeOptions::default())
    }

    /// Binds `addr` and starts serving `sketch` with explicit options.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        sketch: Sketch,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            state: RwLock::new(Arc::new(SketchState {
                generation: options.generation,
                sketch,
            })),
            reload_source: options.reload,
            reload_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            conns: Mutex::new(HashMap::new()),
            max_conns: options.max_conns.max(1),
        });
        let (tx, rx) = mpsc::channel::<(u64, TcpStream)>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..options.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(rx, shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared, tx))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far (batch entries each count once; malformed
    /// frames and reloads do not).
    pub fn queries_answered(&self) -> u64 {
        self.shared.queries.load(Ordering::Relaxed)
    }

    /// Store generation currently serving.
    pub fn generation(&self) -> u64 {
        self.shared.state.read().unwrap().generation
    }

    /// Connections currently registered (being served or queued).
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// A point-in-time snapshot of the serving metrics.
    pub fn metrics(&self) -> ServeMetrics {
        let s = &self.shared;
        ServeMetrics {
            active_generation: s.state.read().unwrap().generation,
            queries_answered: s.queries.load(Ordering::Relaxed),
            batches_answered: s.batches.load(Ordering::Relaxed),
            reloads: s.reloads.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            live_connections: s.conns.lock().unwrap().len() as u64,
            p50_us: s.latency.quantile(0.5),
            p95_us: s.latency.quantile(0.95),
            p99_us: s.latency.quantile(0.99),
            max_us: s.latency.max(),
        }
    }

    /// Re-scans the reload source and atomically swaps to the newest
    /// committed generation. Returns `(generation, changed)`; in-flight
    /// queries finish on their pinned generation either way. Also
    /// triggered over the wire by [`QueryRequest::Reload`] (and by SIGHUP
    /// in the CLI).
    pub fn reload(&self) -> Result<(u64, bool), ReloadError> {
        try_reload(&self.shared)
    }

    /// Stops accepting, closes every live connection, and joins all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Join the accept loop first: afterwards the registry is complete
        // (and the queue's sender is dropped), so closing every
        // registered stream unblocks both in-service readers and queued
        // connections, and the workers drain to Disconnected.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn try_reload(shared: &Shared) -> Result<(u64, bool), ReloadError> {
    let src = shared
        .reload_source
        .as_ref()
        .ok_or(ReloadError::Unsupported)?;
    let _guard = shared.reload_lock.lock().unwrap();
    let current = shared.state.read().unwrap().generation;
    let (generation, snapshot) =
        dim_store::load_latest_snapshot(&src.root, &src.request).map_err(ReloadError::Store)?;
    if generation == current {
        return Ok((generation, false));
    }
    let sketch = Sketch::from_snapshot(src.num_nodes, snapshot);
    *shared.state.write().unwrap() = Arc::new(SketchState { generation, sketch });
    shared.reloads.fetch_add(1, Ordering::Relaxed);
    Ok((generation, true))
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, queue: Sender<(u64, TcpStream)>) {
    let mut next_id = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let mut conns = shared.conns.lock().unwrap();
                if conns.len() >= shared.max_conns {
                    drop(conns);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    let resp = QueryResponse::Error {
                        code: ERR_OVERLOADED,
                        message: format!(
                            "connection limit reached ({} live)",
                            shared.max_conns
                        ),
                    };
                    let _ = write_frame(&mut stream, resp.opcode(), &resp.encode());
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    let id = next_id;
                    next_id += 1;
                    conns.insert(id, clone);
                    drop(conns);
                    if queue.send((id, stream)).is_err() {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
}

/// One worker: pull connections off the shared queue and serve each to
/// completion, then reap its registry entry.
fn worker_loop(queue: Arc<Mutex<Receiver<(u64, TcpStream)>>>, shared: Arc<Shared>) {
    loop {
        let next = {
            let queue = queue.lock().unwrap();
            queue.recv_timeout(WORKER_POLL)
        };
        match next {
            Ok((id, stream)) => {
                serve_connection(stream, &shared);
                if let Some(conn) = shared.conns.lock().unwrap().remove(&id) {
                    let _ = conn.shutdown(Shutdown::Both);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Answers one decoded query against a pinned generation, recording
/// latency and the query count. Spread queries inside a batch evaluate
/// through the batch's reusable [`SketchCursors`] (the allocation
/// amortization `REQ_BATCH` exists for).
fn answer_query(
    shared: &Shared,
    state: &SketchState,
    req: &QueryRequest,
    cursors: Option<&mut SketchCursors<'_>>,
) -> QueryResponse {
    let start = Instant::now();
    let mut resp = match (req, cursors) {
        (QueryRequest::Spread { seeds }, Some(cursors)) => QueryResponse::Spread {
            covered: cursors.seed_set_coverage(seeds),
            theta: state.sketch.theta(),
            num_nodes: state.sketch.num_nodes() as u64,
        },
        (req, _) => state.sketch.answer(req),
    };
    let answered = shared.queries.fetch_add(1, Ordering::Relaxed) + 1;
    shared
        .latency
        .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    if let QueryResponse::Stats(s) = &mut resp {
        s.queries_answered = answered;
        s.generation = state.generation;
        s.shed = shared.shed.load(Ordering::Relaxed);
        s.p50_us = shared.latency.quantile(0.5);
        s.p95_us = shared.latency.quantile(0.95);
        s.p99_us = shared.latency.quantile(0.99);
    }
    resp
}

/// One connection: a strict request/reply loop until EOF, a wire error,
/// or server shutdown (which closes the stream under us).
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => break, // EOF, shutdown, or a framing violation
        };
        let malformed = || QueryResponse::Error {
            code: ERR_MALFORMED,
            message: format!("malformed request frame (opcode {opcode:#04x})"),
        };
        let (resp_opcode, payload) = if opcode == REQ_BATCH {
            match decode_batch(&body) {
                Some(requests) => {
                    // The whole batch answers against one pinned
                    // generation and one set of reusable cursors.
                    let state = shared.pinned();
                    let mut cursors = SketchCursors::new(state.sketch.shards());
                    let responses: Vec<QueryResponse> = requests
                        .iter()
                        .map(|req| answer_query(shared, &state, req, Some(&mut cursors)))
                        .collect();
                    shared.batches.fetch_add(1, Ordering::Relaxed);
                    (RESP_BATCH, encode_response_batch(&responses))
                }
                None => {
                    let resp = malformed();
                    (resp.opcode(), resp.encode())
                }
            }
        } else {
            let resp = match QueryRequest::decode(opcode, &body) {
                Some(QueryRequest::Reload) => match try_reload(shared) {
                    Ok((generation, changed)) => QueryResponse::Reload {
                        generation,
                        changed,
                    },
                    Err(e) => QueryResponse::Error {
                        code: ERR_RELOAD,
                        message: e.to_string(),
                    },
                },
                Some(req) => {
                    let state = shared.pinned();
                    answer_query(shared, &state, &req, None)
                }
                None => malformed(),
            };
            (resp.opcode(), resp.encode())
        };
        if write_frame(&mut stream, resp_opcode, &payload).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QueryClient;
    use crate::proto::encode_batch;
    use dim_cluster::SamplerSpec;
    use dim_coverage::PooledSets;
    use std::sync::atomic::AtomicUsize;

    /// The paper's Fig. 2 instance split over two shards.
    fn sketch() -> Sketch {
        let shards = vec![
            CoverageShard::from_records(5, [&[0u32][..], &[1, 2], &[0, 2]]),
            CoverageShard::from_records(5, [&[1u32, 4][..], &[0], &[1, 3]]),
        ];
        Sketch::new(5, 6, 10, shards)
    }

    #[test]
    fn spread_and_topk_match_direct_evaluation() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let reference = sketch();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let (covered, spread) = client.spread(&[0, 1]).unwrap();
        assert_eq!(covered, seed_set_coverage(reference.shards(), &[0, 1]));
        assert_eq!(covered, 6);
        assert!((spread - 5.0).abs() < 1e-12);
        let top = client.top_k(2, &[], &[]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[], &[]);
        assert_eq!(top.seeds, direct.seeds);
        assert_eq!(top.marginals, direct.marginals);
        assert_eq!(top.covered, direct.covered);
        let top = client.top_k(2, &[4], &[1]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[4], &[1]);
        assert_eq!(top.seeds, direct.seeds);
        server.shutdown();
    }

    #[test]
    fn stats_reports_sketch_shape_and_query_count() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        client.spread(&[0]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_nodes, 5);
        assert_eq!(stats.theta, 6);
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.total_rr_size, 10);
        assert_eq!(stats.queries_answered, 2); // the spread query + this one
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.shed, 0);
        // Both answered queries are in the histogram by now.
        assert!(stats.p99_us >= stats.p50_us);
        assert_eq!(server.queries_answered(), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_typed_error_and_connection_survives() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Truncated Spread body: count says 5 ids, none follow.
        let mut body = Vec::new();
        dim_cluster::ops::put_u64(&mut body, 5);
        write_frame(&mut stream, crate::proto::REQ_SPREAD, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &resp) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
            other => panic!("expected error response, got {other:?}"),
        }
        // The connection still answers well-formed queries afterwards.
        let req = QueryRequest::Stats;
        write_frame(&mut stream, req.opcode(), &req.encode()).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode(op, &resp),
            Some(QueryResponse::Stats(_))
        ));
        assert_eq!(server.queries_answered(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let addr = server.local_addr();
        let mut client = QueryClient::connect(addr).unwrap();
        client.spread(&[0]).unwrap();
        server.shutdown();
        // The server side is gone: the next query fails instead of hanging.
        assert!(client.spread(&[0]).is_err());
        assert!(QueryClient::connect(addr).is_err() || {
            // A racing TCP stack may still accept; the query must not.
            let mut c = QueryClient::connect(addr).unwrap();
            c.spread(&[0]).is_err()
        });
    }

    #[test]
    fn sketch_rejects_mismatched_domain() {
        let shard = CoverageShard::from_records(4, [&[0u32][..]]);
        let result = std::panic::catch_unwind(|| Sketch::new(5, 1, 1, vec![shard]));
        assert!(result.is_err());
    }

    #[test]
    fn batch_replies_equal_singles_in_request_order() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut single = QueryClient::connect(server.local_addr()).unwrap();
        let mut batched = QueryClient::connect(server.local_addr()).unwrap();
        let requests = vec![
            QueryRequest::Spread { seeds: vec![0, 1] },
            QueryRequest::TopK {
                k: 2,
                include: vec![],
                exclude: vec![1],
            },
            QueryRequest::Spread { seeds: vec![] },
            QueryRequest::Spread { seeds: vec![4] },
        ];
        let replies = batched.batch(&requests).unwrap();
        assert_eq!(replies.len(), requests.len());
        for (req, got) in requests.iter().zip(&replies) {
            // Stats replies embed counters, so compare non-stats queries
            // only — and they must match a fresh single-shot answer.
            let expect = single.request(req).unwrap();
            assert_eq!(got, &expect, "{req:?}");
        }
        // One frame, four queries.
        assert_eq!(server.metrics().batches_answered, 1);
        assert_eq!(server.queries_answered(), 4 + requests.len() as u64);
        server.shutdown();
    }

    #[test]
    fn batch_stats_count_every_entry() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let replies = client
            .batch(&[
                QueryRequest::Spread { seeds: vec![0] },
                QueryRequest::Stats,
            ])
            .unwrap();
        match &replies[1] {
            QueryResponse::Stats(s) => {
                assert_eq!(s.queries_answered, 2);
                assert_eq!(s.generation, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn reload_inside_batch_is_malformed() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut body = Vec::new();
        dim_cluster::ops::put_u32(&mut body, 1);
        body.push(crate::proto::REQ_RELOAD);
        dim_cluster::ops::put_u32(&mut body, 0);
        write_frame(&mut stream, REQ_BATCH, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &resp) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
            other => panic!("expected malformed error, got {other:?}"),
        }
        assert_eq!(server.queries_answered(), 0);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let server = Server::start_with(
            "127.0.0.1:0",
            sketch(),
            ServeOptions {
                workers: 2,
                max_conns: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut first = QueryClient::connect(addr).unwrap();
        first.spread(&[0]).unwrap(); // guarantees registration
        // The second connection is shed with a typed reply, then closed.
        let mut second = TcpStream::connect(addr).unwrap();
        let (op, body) = read_frame(&mut second).unwrap();
        match QueryResponse::decode(op, &body) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_OVERLOADED),
            other => panic!("expected overload error, got {other:?}"),
        }
        assert_eq!(server.metrics().shed, 1);
        // The first connection is unaffected, and its stats see the shed.
        let stats = first.stats().unwrap();
        assert_eq!(stats.shed, 1);
        // Releasing the slot re-admits new connections.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(mut c) = QueryClient::connect(addr) {
                if c.spread(&[0]).is_ok() {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "slot never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn finished_connections_are_reaped() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        for _ in 0..5 {
            let mut client = QueryClient::connect(server.local_addr()).unwrap();
            client.spread(&[0]).unwrap();
            drop(client);
        }
        // Workers reap asynchronously after EOF; the registry must drain
        // back to zero instead of growing per connection.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.live_connections() > 0 {
            assert!(Instant::now() < deadline, "connections never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.queries_answered(), 5);
        server.shutdown();
    }

    #[test]
    fn reload_without_store_is_typed_error() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        assert!(matches!(server.reload(), Err(ReloadError::Unsupported)));
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let err = client.reload().unwrap_err();
        assert!(err.to_string().contains("4"), "{err}");
        // The connection survives the failed reload.
        client.spread(&[0]).unwrap();
        server.shutdown();
    }

    /// Writes a complete one-shard snapshot whose single RR set is
    /// `{mark}` — so `spread([mark]) == 1` identifies the generation.
    fn write_generation(root: &std::path::Path, mark: u32) -> u64 {
        let (id, dir) = dim_store::begin_generation(root).unwrap();
        let mut elements = PooledSets::new();
        elements.push(&[mark]);
        let header = dim_store::ShardHeader {
            fingerprint: 0xabcd,
            sampler: SamplerSpec::Subsim,
            seed: mark as u64,
            theta: 1,
            shard_id: 0,
            shard_count: 1,
            num_sets: 5,
            num_elements: 1,
            edges_examined: 0,
        };
        dim_store::write_shard(&dir, &header, &elements).unwrap();
        dim_store::commit_generation(&dir, id).unwrap();
        id
    }

    #[test]
    fn wire_reload_swaps_to_latest_generation() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "dim-serve-reload-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let request = SnapshotRequest {
            fingerprint: 0xabcd,
            sampler: SamplerSpec::Subsim,
            shard_count: None,
        };
        let gen1 = write_generation(&root, 0);
        let (id, snapshot) = dim_store::load_latest_snapshot(&root, &request).unwrap();
        assert_eq!(id, gen1);
        let server = Server::start_with(
            "127.0.0.1:0",
            Sketch::from_snapshot(5, snapshot),
            ServeOptions {
                generation: id,
                reload: Some(ReloadSource {
                    root: root.clone(),
                    request,
                    num_nodes: 5,
                }),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.spread(&[0]).unwrap().0, 1);
        assert_eq!(client.spread(&[3]).unwrap().0, 0);

        // Nothing new yet: reload reports unchanged.
        assert_eq!(client.reload().unwrap(), (gen1, false));

        // A new committed generation swaps in without dropping the
        // connection; answers now reflect the new sketch.
        let gen2 = write_generation(&root, 3);
        assert_eq!(client.reload().unwrap(), (gen2, true));
        assert_eq!(server.generation(), gen2);
        assert_eq!(client.spread(&[0]).unwrap().0, 0);
        assert_eq!(client.spread(&[3]).unwrap().0, 1);
        assert_eq!(client.stats().unwrap().generation, gen2);
        assert_eq!(server.metrics().reloads, 1);
        server.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn batch_frame_opcode_roundtrip_over_wire() {
        // Drive REQ_BATCH at the frame level (no client sugar) to pin the
        // wire contract: one frame in, one RESP_BATCH frame out.
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let body = encode_batch(&[
            QueryRequest::Spread { seeds: vec![0] },
            QueryRequest::Spread { seeds: vec![1] },
        ]);
        write_frame(&mut stream, REQ_BATCH, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        assert_eq!(op, RESP_BATCH);
        let replies = crate::proto::decode_response_batch(&resp).unwrap();
        assert_eq!(
            replies,
            vec![
                QueryResponse::Spread {
                    covered: 3,
                    theta: 6,
                    num_nodes: 5
                },
                QueryResponse::Spread {
                    covered: 3,
                    theta: 6,
                    num_nodes: 5
                },
            ]
        );
        server.shutdown();
    }
}
