//! The query server: a frozen [`Sketch`] shared by a thread-per-connection
//! pool behind a nonblocking accept loop.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dim_cluster::wire::{read_frame, write_frame};
use dim_coverage::{constrained_greedy, seed_set_coverage, CoverageShard};
use dim_store::Snapshot;

use crate::proto::{QueryRequest, QueryResponse, SketchStats, ERR_MALFORMED};

/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// An immutable in-memory RR sketch: the per-machine coverage shards of
/// one sampling run plus the scalars queries need. Queries evaluate
/// through read-only [`dim_coverage::QueryCursor`]s, so one sketch serves
/// any number of concurrent connections without locking.
pub struct Sketch {
    shards: Vec<CoverageShard>,
    num_nodes: usize,
    theta: u64,
    total_rr_size: u64,
}

impl Sketch {
    /// Wraps prepared coverage shards. Panics if any shard's set domain
    /// differs from `num_nodes` or its transpose index is stale.
    pub fn new(num_nodes: usize, theta: u64, total_rr_size: u64, shards: Vec<CoverageShard>) -> Self {
        for shard in &shards {
            assert_eq!(shard.num_sets(), num_nodes, "shard domain != num_nodes");
            assert!(!shard.needs_prepare(), "shard index is stale");
        }
        Sketch {
            shards,
            num_nodes,
            theta,
            total_rr_size,
        }
    }

    /// Builds the sketch from a validated dim-store snapshot; `num_nodes`
    /// comes from the graph the snapshot was checked against.
    pub fn from_snapshot(num_nodes: usize, snapshot: Snapshot) -> Self {
        let theta = snapshot.theta;
        let total_rr_size = snapshot.total_size();
        let num_sets = snapshot.num_sets as usize;
        let shards: Vec<CoverageShard> = snapshot
            .shards
            .into_iter()
            .map(|s| CoverageShard::from_pooled(num_sets, s.elements, s.index))
            .collect();
        Sketch::new(num_nodes, theta, total_rr_size, shards)
    }

    /// Node count `n` of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total RR sets in the sketch (θ).
    pub fn theta(&self) -> u64 {
        self.theta
    }

    /// The coverage shards, for direct (in-process) evaluation.
    pub fn shards(&self) -> &[CoverageShard] {
        &self.shards
    }

    /// Answers one query against the frozen sketch.
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::Spread { seeds } => QueryResponse::Spread {
                covered: seed_set_coverage(&self.shards, seeds),
                theta: self.theta,
                num_nodes: self.num_nodes as u64,
            },
            QueryRequest::TopK {
                k,
                include,
                exclude,
            } => {
                let r = constrained_greedy(&self.shards, *k as usize, include, exclude);
                QueryResponse::TopK {
                    seeds: r.seeds,
                    marginals: r.marginals,
                    covered: r.covered,
                    theta: self.theta,
                    num_nodes: self.num_nodes as u64,
                }
            }
            QueryRequest::Stats => QueryResponse::Stats(SketchStats {
                num_nodes: self.num_nodes as u64,
                theta: self.theta,
                shard_count: self.shards.len() as u32,
                total_rr_size: self.total_rr_size,
                queries_answered: 0, // filled in by the server
            }),
        }
    }
}

struct Shared {
    sketch: Sketch,
    stop: AtomicBool,
    queries: AtomicU64,
    /// Clones of every accepted stream, so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running `dim serve` instance: one accept thread plus one handler
/// thread per live connection, all sharing the sketch read-only.
///
/// Shutdown is deterministic: [`Server::shutdown`] (or drop) stops the
/// accept loop, closes every connection to unblock its reader, and joins
/// all threads — no orphan threads or sockets survive it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `sketch`.
    pub fn start(addr: impl ToSocketAddrs, sketch: Sketch) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            sketch,
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far (all request kinds, excluding malformed
    /// frames).
    pub fn queries_answered(&self) -> u64 {
        self.shared.queries.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every live connection, and joins all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Join the accept loop first: afterwards the connection list is
        // complete, so closing it unblocks every handler.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self.shared.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                    let shared2 = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || serve_connection(stream, shared2));
                    shared.handlers.lock().unwrap().push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
}

/// One connection: a strict request/reply loop until EOF, a wire error,
/// or server shutdown (which closes the stream under us).
fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => break, // EOF, shutdown, or a framing violation
        };
        let resp = match QueryRequest::decode(opcode, &body) {
            Some(req) => {
                let mut resp = shared.sketch.answer(&req);
                let answered = shared.queries.fetch_add(1, Ordering::Relaxed) + 1;
                if let QueryResponse::Stats(s) = &mut resp {
                    s.queries_answered = answered;
                }
                resp
            }
            None => QueryResponse::Error {
                code: ERR_MALFORMED,
                message: format!("malformed request frame (opcode {opcode:#04x})"),
            },
        };
        if write_frame(&mut stream, resp.opcode(), &resp.encode()).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QueryClient;

    /// The paper's Fig. 2 instance split over two shards.
    fn sketch() -> Sketch {
        let shards = vec![
            CoverageShard::from_records(5, [&[0u32][..], &[1, 2], &[0, 2]]),
            CoverageShard::from_records(5, [&[1u32, 4][..], &[0], &[1, 3]]),
        ];
        Sketch::new(5, 6, 10, shards)
    }

    #[test]
    fn spread_and_topk_match_direct_evaluation() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let reference = sketch();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        let (covered, spread) = client.spread(&[0, 1]).unwrap();
        assert_eq!(covered, seed_set_coverage(reference.shards(), &[0, 1]));
        assert_eq!(covered, 6);
        assert!((spread - 5.0).abs() < 1e-12);
        let top = client.top_k(2, &[], &[]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[], &[]);
        assert_eq!(top.seeds, direct.seeds);
        assert_eq!(top.marginals, direct.marginals);
        assert_eq!(top.covered, direct.covered);
        let top = client.top_k(2, &[4], &[1]).unwrap();
        let direct = constrained_greedy(reference.shards(), 2, &[4], &[1]);
        assert_eq!(top.seeds, direct.seeds);
        server.shutdown();
    }

    #[test]
    fn stats_reports_sketch_shape_and_query_count() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut client = QueryClient::connect(server.local_addr()).unwrap();
        client.spread(&[0]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_nodes, 5);
        assert_eq!(stats.theta, 6);
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.total_rr_size, 10);
        assert_eq!(stats.queries_answered, 2); // the spread query + this one
        assert_eq!(server.queries_answered(), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_typed_error_and_connection_survives() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Truncated Spread body: count says 5 ids, none follow.
        let mut body = Vec::new();
        dim_cluster::ops::put_u64(&mut body, 5);
        write_frame(&mut stream, crate::proto::REQ_SPREAD, &body).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        match QueryResponse::decode(op, &resp) {
            Some(QueryResponse::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
            other => panic!("expected error response, got {other:?}"),
        }
        // The connection still answers well-formed queries afterwards.
        let req = QueryRequest::Stats;
        write_frame(&mut stream, req.opcode(), &req.encode()).unwrap();
        let (op, resp) = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode(op, &resp),
            Some(QueryResponse::Stats(_))
        ));
        assert_eq!(server.queries_answered(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections() {
        let server = Server::start("127.0.0.1:0", sketch()).unwrap();
        let addr = server.local_addr();
        let mut client = QueryClient::connect(addr).unwrap();
        client.spread(&[0]).unwrap();
        server.shutdown();
        // The server side is gone: the next query fails instead of hanging.
        assert!(client.spread(&[0]).is_err());
        assert!(QueryClient::connect(addr).is_err() || {
            // A racing TCP stack may still accept; the query must not.
            let mut c = QueryClient::connect(addr).unwrap();
            c.spread(&[0]).is_err()
        });
    }

    #[test]
    fn sketch_rejects_mismatched_domain() {
        let shard = CoverageShard::from_records(4, [&[0u32][..]]);
        let result = std::panic::catch_unwind(|| Sketch::new(5, 1, 1, vec![shard]));
        assert!(result.is_err());
    }
}
