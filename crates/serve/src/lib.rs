//! dim-serve — a long-running influence-query service over a persisted
//! RR sketch.
//!
//! OPIM-C's observation motivates the shape: sampling dominates cost,
//! selection and estimation are cheap. So `dim sample` pays the sampling
//! cost once and persists the sketch through `dim-store`; this crate then
//! serves unboundedly many cheap queries against the frozen sketch:
//!
//! * **Spread estimation** for arbitrary seed sets — coverage fraction
//!   times `n` (Eq. 2), the paper's own quality metric.
//! * **Constrained top-k** — greedy maximum coverage re-run with forced
//!   includes and excludes, reusing the bucketed lazy selector
//!   (Algorithm 1's vector `D`), so the unconstrained answer is exactly
//!   the persisted run's seed set.
//! * **Stats/health** — sketch shape plus a query counter.
//!
//! The wire protocol rides the cluster crate's length-prefixed frames
//! with its own strict codecs ([`proto`]); the [`Server`] is a
//! thread-per-connection pool over an immutable [`Sketch`] (queries
//! evaluate through read-only [`dim_coverage::QueryCursor`]s, so no
//! locking is involved), and [`QueryClient`] is the matching blocking
//! client used by `dim query`.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{QueryClient, TopKResult};
pub use proto::{spread_estimate, QueryRequest, QueryResponse, SketchStats};
pub use server::{Server, Sketch};
