//! dim-serve — a long-running influence-query service over a persisted
//! RR sketch.
//!
//! OPIM-C's observation motivates the shape: sampling dominates cost,
//! selection and estimation are cheap. So `dim sample` pays the sampling
//! cost once and persists the sketch through `dim-store`; this crate then
//! serves unboundedly many cheap queries against the frozen sketch:
//!
//! * **Spread estimation** for arbitrary seed sets — coverage fraction
//!   times `n` (Eq. 2), the paper's own quality metric.
//! * **Constrained top-k** — greedy maximum coverage re-run with forced
//!   includes and excludes, reusing the bucketed lazy selector
//!   (Algorithm 1's vector `D`), so the unconstrained answer is exactly
//!   the persisted run's seed set.
//! * **Stats/health** — sketch shape plus a query counter.
//!
//! The wire protocol rides the cluster crate's length-prefixed frames
//! with its own strict codecs ([`proto`]), including a pipelined
//! `REQ_BATCH` opcode (one frame, N queries, replies in request order)
//! and an admin `REQ_RELOAD`. The [`Server`] is a bounded worker pool
//! over a shared accept queue serving a hot-swappable generation-tagged
//! [`Sketch`] (queries evaluate through read-only
//! [`dim_coverage::QueryCursor`]s pinned to one generation, so no
//! locking sits on the answer path), with connection-limit load shedding
//! and latency/throughput metrics ([`ServeMetrics`]). [`QueryClient`] is
//! the matching blocking client used by `dim query` and `dim-loadgen`,
//! with rendezvous-style retrying connects ([`ConnectOptions`]).
//!
//! One daemon can serve many tenants: [`Server::start_multi`] takes a
//! [`TenantRegistry`] plus one sketch per tenant and scopes every
//! connection to the tenant it authenticated as ([`auth`], [`tenant`]) —
//! independent generations and hot reloads, per-tenant quotas
//! ([`TenantQuota`]) with typed `ERR_QUOTA` shedding, and per-tenant
//! metrics behind a tenant-scoped `REQ_STATS`.

pub mod auth;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod tenant;

pub use auth::Credentials;
pub use client::{ConnectOptions, QueryClient, TopKResult};
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use proto::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch, spread_estimate,
    QueryRequest, QueryResponse, SketchStats,
};
pub use server::{ReloadError, ReloadSource, ServeOptions, Server, Sketch, TenantBind, TenantHandle};
pub use tenant::{AuthFailure, TenantQuota, TenantRegistry, TenantSpec};
