//! Serving-side observability: a lock-free latency histogram and the
//! serializable [`ServeMetrics`] summary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in [`LatencyHistogram`].
const BUCKETS: usize = 256;
/// Values below this (µs) get one exact bucket each.
const LINEAR: u64 = 16;
/// Log-linear sub-buckets per octave above the linear range.
const SUBS: usize = 4;

/// A fixed-size log-linear histogram of microsecond latencies.
///
/// Values `< 16 µs` land in exact unit buckets; above that each power of
/// two splits into 4 sub-buckets, so quantile estimates carry at most
/// ~25 % relative error while the whole histogram is 256 atomic counters
/// — recording is two relaxed atomic ops, no locks, safe on the query
/// hot path.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact maximum ever recorded (the top bucket only bounds below).
    max: AtomicU64,
}

/// Bucket index for a value in µs.
fn bucket_of(us: u64) -> usize {
    if us < LINEAR {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros() as usize; // ≥ 4
    let sub = ((us >> (msb - 2)) & 3) as usize;
    (LINEAR as usize + (msb - 4) * SUBS + sub).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `b` — what quantiles report, so an
/// estimate never undershoots the true latency of the ranked sample.
fn upper_bound(b: usize) -> u64 {
    if b < LINEAR as usize {
        return b as u64;
    }
    let msb = 4 + (b - LINEAR as usize) / SUBS;
    let sub = ((b - LINEAR as usize) % SUBS) as u64;
    (1u64 << msb) + (sub + 1) * (1u64 << (msb - 2)) - 1
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in µs: the upper bound of the bucket
    /// holding the sample of that rank, except the exact maximum for the
    /// unbounded top bucket. 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == BUCKETS - 1 {
                    self.max.load(Ordering::Relaxed)
                } else {
                    upper_bound(b).min(self.max.load(Ordering::Relaxed))
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` — how the admin
    /// all-tenants view aggregates per-tenant histograms into one
    /// daemon-wide quantile estimate.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// A point-in-time summary of a running server, serializable to JSON for
/// `BENCH_serve.json` and exposed (in part) through `REQ_STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Store generation currently serving.
    pub active_generation: u64,
    /// Queries answered (batch entries each count once).
    pub queries_answered: u64,
    /// `REQ_BATCH` frames answered.
    pub batches_answered: u64,
    /// Successful hot reloads (sketch actually swapped).
    pub reloads: u64,
    /// Connections refused with `ERR_OVERLOADED`.
    pub shed: u64,
    /// Requests refused with `ERR_QUOTA` (per-tenant limits; the
    /// connection survives, unlike `shed`).
    pub quota_shed: u64,
    /// Connections currently registered (live or awaiting a worker).
    pub live_connections: u64,
    /// Query-latency percentiles and maximum, µs.
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl ServeMetrics {
    /// Serializes to a JSON object. Hand-rolled: every field is an
    /// integer, and keeping the encoder dependency-free lets offline
    /// builds produce real `BENCH_serve.json` files.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"active_generation\":{},\"queries_answered\":{},",
                "\"batches_answered\":{},\"reloads\":{},\"shed\":{},",
                "\"quota_shed\":{},\"live_connections\":{},\"p50_us\":{},",
                "\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}"
            ),
            self.active_generation,
            self.queries_answered,
            self.batches_answered,
            self.reloads,
            self.shed,
            self.quota_shed,
            self.live_connections,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for us in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 30, u64::MAX] {
            let b = bucket_of(us);
            assert!(b >= prev, "bucket order violated at {us}");
            assert!(b < BUCKETS);
            prev = b;
            // Every value is ≤ its bucket's upper bound (top bucket aside).
            if b < BUCKETS - 1 {
                assert!(us <= upper_bound(b), "us {us} > upper {}", upper_bound(b));
            }
        }
        // Upper bounds are strictly increasing.
        for b in 1..BUCKETS - 1 {
            assert!(upper_bound(b) > upper_bound(b - 1), "bucket {b}");
        }
    }

    #[test]
    fn quantiles_bound_true_values() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 1000);
        // True p50 = 500, p99 = 990; estimates are ≥ truth and within the
        // ~25 % bucket error.
        let p50 = h.quantile(0.5);
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1250).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max(), 1000);
        // p100 never exceeds the recorded maximum.
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn merge_accumulates_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for us in [3u64, 10, 100] {
            a.record(us);
        }
        for us in [5u64, 900] {
            b.record(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 900);
        assert_eq!(a.quantile(1.0), 900);
    }

    #[test]
    fn small_exact_range_is_exact() {
        let h = LatencyHistogram::new();
        for us in [3u64, 3, 3, 9] {
            h.record(us);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 9);
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        let m = ServeMetrics {
            active_generation: 2,
            queries_answered: 100,
            batches_answered: 10,
            reloads: 1,
            shed: 3,
            quota_shed: 4,
            live_connections: 8,
            p50_us: 40,
            p95_us: 90,
            p99_us: 120,
            max_us: 500,
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"active_generation\":2",
            "\"queries_answered\":100",
            "\"batches_answered\":10",
            "\"reloads\":1",
            "\"shed\":3",
            "\"quota_shed\":4",
            "\"live_connections\":8",
            "\"p50_us\":40",
            "\"p95_us\":90",
            "\"p99_us\":120",
            "\"max_us\":500",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
