//! Serve-port authentication flow on top of the shared primitives in
//! [`dim_cluster::auth`].
//!
//! A client of a multi-tenant server sends one [`proto::REQ_AUTH`] frame
//! before anything else: `version · tenant id · SHA-256(token)`. The
//! server looks the id up in its [`crate::tenant::TenantRegistry`] and
//! compares digests in constant time; failures come back as typed
//! [`proto::RESP_ERROR`] frames ([`proto::ERR_UNKNOWN_TENANT`] /
//! [`proto::ERR_UNAUTHORIZED`]) and close the connection. Single-tenant
//! servers (no registry) skip the handshake entirely — the pre-tenant
//! protocol is a proper subset.

use dim_cluster::auth::{token_digest, Digest};

use crate::proto::{self, QueryRequest};
use crate::tenant::AuthFailure;

/// What a client presents to a multi-tenant server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credentials {
    /// Tenant id (registry key).
    pub tenant: String,
    /// Bearer token; hashed before it touches the wire.
    pub token: String,
}

impl Credentials {
    pub fn new(tenant: impl Into<String>, token: impl Into<String>) -> Credentials {
        Credentials {
            tenant: tenant.into(),
            token: token.into(),
        }
    }

    /// Credentials from `DIM_TENANT` / `DIM_TOKEN`, if both are set and
    /// the tenant id is non-empty (an unset pair means "single-tenant
    /// server, no handshake").
    pub fn from_env() -> Option<Credentials> {
        let tenant = std::env::var("DIM_TENANT").ok()?;
        if tenant.is_empty() {
            return None;
        }
        let token = std::env::var("DIM_TOKEN").unwrap_or_default();
        Some(Credentials { tenant, token })
    }

    /// The digest that travels in the AUTH frame.
    pub fn digest(&self) -> Digest {
        token_digest(&self.token)
    }

    /// The AUTH frame announcing these credentials.
    pub fn auth_request(&self) -> QueryRequest {
        QueryRequest::Auth {
            version: proto::AUTH_VERSION,
            tenant: self.tenant.clone(),
            auth: self.digest(),
        }
    }
}

/// The wire error a refused AUTH attempt maps to.
pub fn failure_error(tenant: &str, failure: AuthFailure) -> (u8, String) {
    match failure {
        AuthFailure::UnknownTenant => (
            proto::ERR_UNKNOWN_TENANT,
            format!("unknown tenant {tenant:?}"),
        ),
        AuthFailure::BadToken => (
            proto::ERR_UNAUTHORIZED,
            format!("bad token for tenant {tenant:?}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auth_request_carries_digest_not_token() {
        let creds = Credentials::new("acme", "hunter2");
        match creds.auth_request() {
            QueryRequest::Auth {
                version,
                tenant,
                auth,
            } => {
                assert_eq!(version, proto::AUTH_VERSION);
                assert_eq!(tenant, "acme");
                assert_eq!(auth, token_digest("hunter2"));
                // The encoded frame never contains the secret bytes.
                let body = creds.auth_request().encode();
                assert!(!body
                    .windows("hunter2".len())
                    .any(|w| w == "hunter2".as_bytes()));
            }
            other => panic!("expected Auth, got {other:?}"),
        }
    }

    #[test]
    fn failure_errors_are_distinct() {
        let (unknown, _) = failure_error("a", AuthFailure::UnknownTenant);
        let (bad, _) = failure_error("a", AuthFailure::BadToken);
        assert_eq!(unknown, proto::ERR_UNKNOWN_TENANT);
        assert_eq!(bad, proto::ERR_UNAUTHORIZED);
        assert_ne!(unknown, bad);
    }
}
