//! The tenant registry: who may query, with what token, against which
//! store, under which quotas.
//!
//! A multi-tenant server loads a `TENANTS.json` config at startup
//! (`dim serve --tenants TENANTS.json`):
//!
//! ```json
//! {
//!   "tenants": [
//!     {
//!       "id": "acme",
//!       "token": "acme-secret",
//!       "store": "/var/dim/acme",
//!       "graph": "graphs/acme.txt",
//!       "max_in_flight": 64,
//!       "max_qps": 500,
//!       "max_batch": 128
//!     },
//!     { "id": "globex", "token_sha256": "9f86d0…(64 hex)", "store": "/var/dim/globex" }
//!   ]
//! }
//! ```
//!
//! `token` (plaintext, hashed at load) and `token_sha256` (pre-hashed, so
//! operators never store secrets on disk) are interchangeable; exactly
//! one is required. Quota fields are optional and `0` means unlimited.
//! `store`/`graph` are deployment hints consumed by the CLI (`dim serve`)
//! — the serve library itself binds a tenant to whatever
//! [`crate::server::Sketch`] and reload source the caller hands it.

use std::path::PathBuf;

use dim_cluster::auth::{parse_hex_digest, token_digest, verify_digest, Digest};
use dim_cluster::json::Json;

use crate::proto::MAX_TENANT_ID_LEN;

/// Per-tenant admission limits. `0` disables the respective limit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Queries a tenant may have in flight at once, across all of its
    /// connections. Excess requests get `ERR_QUOTA` and stay connected.
    pub max_in_flight: u32,
    /// Sustained queries/second, enforced by a token bucket with a burst
    /// of one second's allowance.
    pub max_qps: u32,
    /// Largest batch a single `REQ_BATCH` frame may carry.
    pub max_batch: u32,
}

/// One registry entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant id presented in the AUTH frame. Non-empty, at most
    /// [`MAX_TENANT_ID_LEN`] bytes.
    pub id: String,
    /// SHA-256 digest of the tenant's bearer token.
    pub auth: Digest,
    /// Snapshot-store root this tenant's sketches load from (CLI hint).
    pub store: Option<PathBuf>,
    /// Graph spec this tenant's sketch was sampled from (CLI hint).
    pub graph: Option<String>,
    /// Admission limits.
    pub quota: TenantQuota,
}

/// Why an AUTH attempt was refused. The two cases map to distinct wire
/// errors ([`crate::proto::ERR_UNKNOWN_TENANT`] /
/// [`crate::proto::ERR_UNAUTHORIZED`]) so callers can tell a typo'd
/// tenant id from a bad secret.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthFailure {
    /// No registry entry with the presented id.
    UnknownTenant,
    /// The entry exists but the presented digest does not match.
    BadToken,
}

/// The set of tenants a server admits, loaded once at startup.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantRegistry {
    tenants: Vec<TenantSpec>,
}

impl TenantRegistry {
    /// A registry over explicit specs (tests, embedded servers).
    /// Duplicate ids are rejected like in the JSON path.
    pub fn new(tenants: Vec<TenantSpec>) -> Result<TenantRegistry, String> {
        for (i, t) in tenants.iter().enumerate() {
            validate_id(&t.id)?;
            if tenants[..i].iter().any(|prev| prev.id == t.id) {
                return Err(format!("duplicate tenant id {:?}", t.id));
            }
        }
        Ok(TenantRegistry { tenants })
    }

    /// Parses the `TENANTS.json` shape. Every entry needs `id` and
    /// exactly one of `token` / `token_sha256`; quota and store fields
    /// are optional.
    pub fn from_json(text: &str) -> Result<TenantRegistry, String> {
        let root = Json::parse(text)?;
        if !matches!(root, Json::Obj(_)) {
            return Err("tenant config must be a JSON object".into());
        }
        let items = match root.get("tenants") {
            Some(Json::Arr(items)) => items,
            _ => return Err("tenant config needs a \"tenants\" array".into()),
        };
        let mut tenants = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .str_of("id")
                .ok_or("tenant entry needs an \"id\" string")?
                .to_string();
            let auth = match (item.get("token"), item.get("token_sha256")) {
                (Some(token), None) => token_digest(token.as_str("token")?),
                (None, Some(hex)) => parse_hex_digest(hex.as_str("token_sha256")?)
                    .ok_or_else(|| format!("tenant {id:?}: token_sha256 must be 64 hex chars"))?,
                (Some(_), Some(_)) => {
                    return Err(format!(
                        "tenant {id:?}: give either token or token_sha256, not both"
                    ))
                }
                (None, None) => {
                    return Err(format!("tenant {id:?}: needs a token or token_sha256"))
                }
            };
            tenants.push(TenantSpec {
                id,
                auth,
                store: item.str_of("store").map(PathBuf::from),
                graph: item.str_of("graph").map(str::to_string),
                quota: TenantQuota {
                    max_in_flight: item.u32_or("max_in_flight", 0)?,
                    max_qps: item.u32_or("max_qps", 0)?,
                    max_batch: item.u32_or("max_batch", 0)?,
                },
            });
        }
        TenantRegistry::new(tenants)
    }

    /// Loads and parses a `TENANTS.json` file.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<TenantRegistry, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        TenantRegistry::from_json(&text)
    }

    /// The registry entry for `id`, if any.
    pub fn get(&self, id: &str) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Verifies a presented `(id, digest)` pair; constant-time on the
    /// digest so timing does not leak how much of it matched.
    pub fn verify(&self, id: &str, presented: &Digest) -> Result<&TenantSpec, AuthFailure> {
        let spec = self.get(id).ok_or(AuthFailure::UnknownTenant)?;
        if verify_digest(presented, &spec.auth) {
            Ok(spec)
        } else {
            Err(AuthFailure::BadToken)
        }
    }

    /// All entries, registry order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.iter()
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("tenant id must be non-empty".into());
    }
    if id.len() > MAX_TENANT_ID_LEN {
        return Err(format!(
            "tenant id {:?}… exceeds {MAX_TENANT_ID_LEN} bytes",
            &id[..16.min(id.len())]
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::auth::digest_hex;

    fn spec(id: &str, token: &str) -> TenantSpec {
        TenantSpec {
            id: id.into(),
            auth: token_digest(token),
            store: None,
            graph: None,
            quota: TenantQuota::default(),
        }
    }

    #[test]
    fn parses_both_token_forms_and_quotas() {
        let hex = digest_hex(&token_digest("globex-secret"));
        let text = format!(
            r#"{{"tenants": [
                {{"id": "acme", "token": "acme-secret", "store": "/var/dim/acme",
                  "graph": "g.txt", "max_in_flight": 64, "max_qps": 500, "max_batch": 128}},
                {{"id": "globex", "token_sha256": "{hex}"}}
            ]}}"#
        );
        let reg = TenantRegistry::from_json(&text).unwrap();
        assert_eq!(reg.len(), 2);
        let acme = reg.get("acme").unwrap();
        assert_eq!(acme.store.as_deref(), Some(std::path::Path::new("/var/dim/acme")));
        assert_eq!(acme.graph.as_deref(), Some("g.txt"));
        assert_eq!(
            acme.quota,
            TenantQuota {
                max_in_flight: 64,
                max_qps: 500,
                max_batch: 128
            }
        );
        // Both forms hash to the same digest semantics.
        assert!(reg.verify("acme", &token_digest("acme-secret")).is_ok());
        assert!(reg.verify("globex", &token_digest("globex-secret")).is_ok());
        // Defaults: no store, unlimited quotas.
        let globex = reg.get("globex").unwrap();
        assert_eq!(globex.store, None);
        assert_eq!(globex.quota, TenantQuota::default());
    }

    #[test]
    fn verify_distinguishes_unknown_from_bad_token() {
        let reg = TenantRegistry::new(vec![spec("acme", "s")]).unwrap();
        assert_eq!(
            reg.verify("nobody", &token_digest("s")),
            Err(AuthFailure::UnknownTenant)
        );
        assert_eq!(
            reg.verify("acme", &token_digest("wrong")),
            Err(AuthFailure::BadToken)
        );
        assert_eq!(reg.verify("acme", &token_digest("s")).unwrap().id, "acme");
    }

    #[test]
    fn rejects_malformed_configs() {
        for bad in [
            r#"[]"#,                                              // not an object
            r#"{}"#,                                              // no tenants key
            r#"{"tenants": [{"token": "x"}]}"#,                   // missing id
            r#"{"tenants": [{"id": "a"}]}"#,                      // missing token
            r#"{"tenants": [{"id": "a", "token": "x", "token_sha256": "y"}]}"#,
            r#"{"tenants": [{"id": "a", "token_sha256": "zz"}]}"#, // bad hex
            r#"{"tenants": [{"id": "", "token": "x"}]}"#,          // empty id
            r#"{"tenants": [{"id": "a", "token": "x"}, {"id": "a", "token": "y"}]}"#,
            r#"{"tenants": []} trailing"#,                         // trailing bytes
        ] {
            assert!(TenantRegistry::from_json(bad).is_err(), "accepted {bad:?}");
        }
        let long = format!(
            r#"{{"tenants": [{{"id": "{}", "token": "x"}}]}}"#,
            "i".repeat(MAX_TENANT_ID_LEN + 1)
        );
        assert!(TenantRegistry::from_json(&long).is_err());
    }
}
