//! `dim` — command-line influence maximization.
//!
//! ```text
//! dim stats    --graph <edges.txt|profile:NAME[:SCALE]> [--undirected]
//! dim im       --graph … --k 50 [--model ic|lt] [--epsilon 0.1] [--machines 8]
//!              [--algorithm imm|diimm|opim|subsim] [--backend B] [--evaluate]
//!              [--load-rr DIR]
//! dim sample   --graph … --k 50 --out DIR [--machines 8] [--backend B]
//!              [--generations [--keep N]]
//! dim serve    --graph … --store DIR [--addr 127.0.0.1:7117] [--max-queries N]
//!              [--workers N] [--max-conns N] [--tenants TENANTS.json]
//! dim query    --addr HOST:PORT (--stats | --reload | --seeds 1,2,3 |
//!              --k K [--include a,b] [--exclude c,d]) [--timeout SECS]
//!              [--tenant ID --token SECRET]
//! dim coverage --graph … --k 50 [--machines 8] [--backend B]
//! dim simulate --graph … --seeds 1,2,3 [--model ic|lt] [--sims 10000]
//! dim generate --profile NAME[:SCALE] --out edges.txt
//! ```
//!
//! `sample` runs DiIMM and persists every machine's RR shard as a
//! versioned dim-store snapshot; `im --load-rr DIR` reruns seed selection
//! from such a snapshot (byte-identical seeds, no sampling), and `serve`
//! answers spread / constrained-top-k queries over it until stopped
//! (`--max-queries` bounds the lifetime for scripted runs).
//!
//! With `--generations`, `sample` appends a new *committed generation*
//! (`gen-N/` + manifest) under `--out` instead of overwriting it, GC'ing
//! generations beyond `--keep`; `serve` auto-detects the newest committed
//! generation and hot-swaps to later ones on SIGHUP or `query --reload`
//! without dropping in-flight queries.
//!
//! `--backend` selects the cluster execution layer: `sequential` (default),
//! `threads`, and `rayon` run the simulated cluster in-process; `proc`
//! (requires the `proc-backend` feature) spawns one `dim-worker` process
//! per machine over loopback TCP and drives them through the same phase-op
//! protocol, so seeds and marginals are identical to the simulator's.
//!
//! Graphs load from SNAP-style edge lists (`u v [p]`, `#` comments) or are
//! generated from the paper's dataset profiles (`profile:facebook`,
//! `profile:twitter:0.001`, …).

use std::collections::HashMap;
use std::process::ExitCode;

use dim::prelude::*;
use dim_cluster::SimCluster;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::from(2);
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&flags),
        "im" => cmd_im(&flags),
        "sample" => cmd_sample(&flags),
        "stream" => cmd_stream(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "coverage" => cmd_coverage(&flags),
        "simulate" => cmd_simulate(&flags),
        "generate" => cmd_generate(&flags),
        "chaos" => cmd_chaos(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "dim — distributed influence maximization (ICDE 2022 reproduction)

commands:
  stats     --graph <src>                   graph statistics
  im        --graph <src> --k <k>           seed selection with (1-1/e-ε) guarantee
                                            (--load-rr DIR selects from a snapshot)
  sample    --graph <src> --k <k> --out DIR run DiIMM and persist the RR sketch
                                            (--generations appends a committed
                                            gen-N/, GC'd down to --keep N)
  stream    --graph <src> --store DIR       apply streamed edge edits to a sketch:
            --apply EDITS.jsonl             each batch repairs the resident RR sets
                                            incrementally and commits a delta
                                            generation (--batch-size N ops/batch,
                                            --keep N, --compact folds the chain,
                                            --select reruns seed selection)
  serve     --graph <src> --store DIR       answer influence queries over a sketch
                                            (--addr A, --max-queries N,
                                            --workers N, --max-conns N; serves the
                                            newest generation, reloads on SIGHUP;
                                            --tenants TENANTS.json serves one
                                            namespace per tenant behind token auth
                                            with per-tenant quotas)
  query     --addr HOST:PORT                query a running server: --stats,
                                            --reload, --seeds a,b,c, or --k K
                                            [--include a,b] [--exclude c,d]
                                            (--timeout S retries the connect;
                                            --tenant ID --token SECRET or
                                            DIM_TENANT/DIM_TOKEN authenticate
                                            against a multi-tenant server)
  coverage  --graph <src> --k <k>           max-coverage over neighborhoods (NewGreeDi)
  simulate  --graph <src> --seeds a,b,c     Monte-Carlo spread of a seed set
  generate  --profile NAME[:SCALE] --out F  write a synthetic profile graph
  chaos     --graph <src> --plan PLAN.json  replay a fault schedule against a
                                            backend and assert seeds/marginals
                                            match a fault-free reference run
                                            (--min-survivors N, --straggler-ms M,
                                            --recover-from DIR rebuilds lost
                                            shards from that snapshot)

graph sources: a SNAP edge-list path, or profile:NAME[:SCALE]
  (facebook, googleplus, livejournal, twitter)

common flags: --model ic|lt  --epsilon E  --delta D  --k K  --seed S
  --machines L  --algorithm imm|diimm|opim|subsim  --undirected
  --backend sequential|threads|rayon|proc|join
  --weights wc|uniform:P|trivalency  --sims N  --evaluate  --breakdown

join backend: workers are pre-started (dim-worker --connect ADDR --join)
  and register with this master; bind via DIM_MASTER_BIND (e.g.
  0.0.0.0:7070), bound by --join-timeout SECS (or DIM_JOIN_TIMEOUT_SECS)"
    );
}

struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            if name == "undirected"
                || name == "evaluate"
                || name == "breakdown"
                || name == "stats"
                || name == "generations"
                || name == "reload"
                || name == "compact"
                || name == "select"
            {
                map.insert(name.to_string(), "true".to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                map.insert(name.to_string(), value.clone());
            }
        }
        Ok(Flags(map))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad --{name} value {s:?}")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }
}

fn weight_model(flags: &Flags) -> Result<WeightModel, String> {
    match flags.get("weights").unwrap_or("wc") {
        "wc" | "weighted-cascade" => Ok(WeightModel::WeightedCascade),
        "trivalency" => Ok(WeightModel::Trivalency),
        other => {
            if let Some(p) = other.strip_prefix("uniform:") {
                let p: f64 = p.parse().map_err(|_| format!("bad probability {p:?}"))?;
                Ok(WeightModel::Uniform(p))
            } else {
                Err(format!("unknown weight model {other:?}"))
            }
        }
    }
}

fn load_graph(flags: &Flags) -> Result<Graph, String> {
    load_graph_spec(flags.required("graph")?, flags)
}

/// [`load_graph`] for an explicit source spec (per-tenant graphs in
/// `dim serve --tenants` name their own source; everything else uses
/// `--graph`).
fn load_graph_spec(src: &str, flags: &Flags) -> Result<Graph, String> {
    let model = weight_model(flags)?;
    if let Some(spec) = src.strip_prefix("profile:") {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("");
        let profile = DatasetProfile::parse(name)
            .ok_or_else(|| format!("unknown profile {name:?}"))?;
        let scale: f64 = match parts.next() {
            None => default_scale(profile),
            Some(s) => s.parse().map_err(|_| format!("bad scale {s:?}"))?,
        };
        let seed = flags.num("seed", 42u64)?;
        Ok(profile.generate_with(scale, model, seed))
    } else {
        let directed = flags.get("undirected").is_none();
        dim_graph::io::read_edge_list_file(src, directed, model)
            .map_err(|e| format!("cannot read {src}: {e}"))
    }
}

fn default_scale(profile: DatasetProfile) -> f64 {
    match profile {
        DatasetProfile::Facebook => 1.0,
        DatasetProfile::GooglePlus => 0.15,
        DatasetProfile::LiveJournal => 0.025,
        DatasetProfile::Twitter => 0.005,
    }
}

fn model_of(flags: &Flags) -> Result<DiffusionModel, String> {
    let name = flags.get("model").unwrap_or("ic");
    DiffusionModel::parse(name).ok_or_else(|| format!("unknown model {name:?}"))
}

/// Which cluster execution layer to run on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// In-process simulated cluster ([`SimCluster`]) in one of its modes.
    Sim(ExecMode),
    /// One `dim-worker` process per machine over loopback TCP.
    #[cfg(feature = "proc-backend")]
    Proc,
    /// Pre-started `dim-worker --join` processes registering with this
    /// master over TCP (multi-host capable; bind via `DIM_MASTER_BIND`).
    #[cfg(feature = "proc-backend")]
    Join,
}

fn backend_of(flags: &Flags) -> Result<Backend, String> {
    match flags.get("backend").unwrap_or("sequential") {
        "sequential" => Ok(Backend::Sim(ExecMode::Sequential)),
        "threads" => Ok(Backend::Sim(ExecMode::Threads)),
        "rayon" => Ok(Backend::Sim(ExecMode::Rayon)),
        name @ ("proc" | "join") => {
            #[cfg(feature = "proc-backend")]
            {
                Ok(if name == "proc" { Backend::Proc } else { Backend::Join })
            }
            #[cfg(not(feature = "proc-backend"))]
            {
                Err(format!(
                    "--backend {name} needs the `proc-backend` feature \
                     (cargo build --features proc-backend)"
                ))
            }
        }
        other => Err(format!("unknown backend {other:?}")),
    }
}

/// Spawns (or thread-hosts, when no `dim-worker` binary is discoverable)
/// the worker processes for a proc-backend run.
#[cfg(feature = "proc-backend")]
fn proc_cluster(machines: usize, net: NetworkModel, seed: u64) -> Result<ProcCluster, String> {
    ProcCluster::auto_with(machines, net, seed, move |i| WorkerHost::new(i, seed))
        .map_err(|e| format!("cannot start worker cluster: {e}"))
}

/// Assembles a join-mode cluster from pre-started workers: binds the
/// advertised address (`DIM_MASTER_BIND`, default loopback), waits until
/// all `machines` workers have registered (bounded by `--join-timeout` /
/// `DIM_JOIN_TIMEOUT_SECS`), and reports where the cluster came up and
/// how long rendezvous took. The latency also lands in the run's
/// `--breakdown` timeline under the `rendezvous` phase.
#[cfg(feature = "proc-backend")]
fn join_cluster(
    machines: usize,
    net: NetworkModel,
    seed: u64,
    flags: &Flags,
) -> Result<JoinCluster, String> {
    let mut config = JoinConfig::new(machines);
    let timeout_secs = flags.num("join-timeout", 0u64)?;
    if timeout_secs > 0 {
        config.join_timeout = std::time::Duration::from_secs(timeout_secs);
    }
    let mut rdv = Rendezvous::bind_env(config)
        .map_err(|e| format!("cannot bind rendezvous address: {e}"))?;
    let addr = rdv.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "dim: waiting for {machines} worker(s) to join at {addr} \
         (dim-worker --connect {addr} --join)"
    );
    let cluster = rdv
        .accept_session(net, seed)
        .map_err(|e| format!("rendezvous failed: {e}"))?;
    eprintln!(
        "dim: session {} assembled in {:.3}s",
        cluster.session_id(),
        cluster.rendezvous_latency().as_secs_f64()
    );
    Ok(cluster)
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let stats = GraphStats::compute(&g);
    println!("{stats}");
    println!("memory: {:.1} MiB", g.memory_bytes() as f64 / (1 << 20) as f64);
    println!(
        "LT-compatible: {}",
        if g.satisfies_lt_constraint() { "yes" } else { "no (Σ in-probs > 1 somewhere)" }
    );
    Ok(())
}

/// Builds the run configuration shared by `im`, `sample`, and `serve`
/// from the common flags (the sampler kind follows `--algorithm` /
/// `--model`, so a snapshot written by `sample` validates under the same
/// flags on load).
fn im_config(flags: &Flags, g: &Graph) -> Result<(ImConfig, DiffusionModel), String> {
    let model = model_of(flags)?;
    let k = flags.num("k", 50usize)?.min(g.num_nodes());
    let algorithm = flags.get("algorithm").unwrap_or("diimm");
    let sampler = if algorithm == "subsim" {
        if model != DiffusionModel::IndependentCascade {
            return Err("subsim supports the IC model only".into());
        }
        SamplerKind::Subsim
    } else {
        SamplerKind::Standard(model)
    };
    let config = ImConfig {
        k,
        epsilon: flags.num("epsilon", 0.1f64)?,
        delta: flags.num("delta", 1.0 / g.num_nodes() as f64)?,
        seed: flags.num("seed", 42u64)?,
        sampler,
    };
    Ok((config, model))
}

fn cmd_im(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let (config, model) = im_config(flags, &g)?;
    let machines = flags.num("machines", 1usize)?;
    let algorithm = flags.get("algorithm").unwrap_or("diimm");
    let net = NetworkModel::shared_memory();
    let backend = backend_of(flags)?;
    let r = if let Some(dir) = flags.get("load-rr") {
        if !matches!(algorithm, "diimm" | "subsim") {
            return Err("--load-rr replays a DiIMM sketch; use --algorithm diimm|subsim".into());
        }
        let mode = match backend {
            Backend::Sim(mode) => mode,
            #[cfg(feature = "proc-backend")]
            _ => return Err("--load-rr selects locally; use a simulated backend".into()),
        };
        diimm_load_rr(&g, &config, std::path::Path::new(dir), net, mode)
            .map_err(|e| e.to_string())?
    } else {
        match (algorithm, backend) {
            ("imm", _) => imm(&g, &config),
            ("diimm" | "subsim", Backend::Sim(mode)) => {
                diimm(&g, &config, machines, net, mode).map_err(|e| e.to_string())?
            }
            #[cfg(feature = "proc-backend")]
            ("diimm" | "subsim", Backend::Proc) => {
                let mut cluster = proc_cluster(machines, net, config.seed)?;
                setup_im_cluster(&mut cluster, &g, config.sampler).map_err(|e| e.to_string())?;
                diimm_on(&mut cluster, &g, &config, true).map_err(|e| e.to_string())?
            }
            #[cfg(feature = "proc-backend")]
            ("diimm" | "subsim", Backend::Join) => {
                let mut cluster = join_cluster(machines, net, config.seed, flags)?;
                setup_im_cluster(&mut cluster, &g, config.sampler).map_err(|e| e.to_string())?;
                diimm_on(&mut cluster, &g, &config, true).map_err(|e| e.to_string())?
            }
            ("opim", Backend::Sim(mode)) => {
                dopim_c(&g, &config, machines, net, mode).map_err(|e| e.to_string())?
            }
            #[cfg(feature = "proc-backend")]
            ("opim", Backend::Proc | Backend::Join) => {
                return Err("--backend proc/join supports diimm/subsim (opim keeps two \
                            resident collections; use a simulated backend)"
                    .into())
            }
            (other, _) => return Err(format!("unknown algorithm {other:?}")),
        }
    };
    println!("seeds: {:?}", r.seeds);
    println!("estimated spread: {:.1} ({} RR sets)", r.est_spread, r.num_rr_sets);
    println!(
        "time: sampling {:.3}s, selection {:.3}s, comm {:.3}s",
        r.timings.sampling.as_secs_f64(),
        r.timings.selection.as_secs_f64(),
        r.timings.communication.as_secs_f64()
    );
    if flags.get("breakdown").is_some() {
        print_breakdown(&r.timeline);
    }
    if flags.get("evaluate").is_some() {
        let sims = flags.num("sims", 10_000usize)?;
        let mc = estimate_spread(&g, model, &r.seeds, sims, config.seed ^ 0xE7A1);
        println!("simulated spread: {mc:.1} ({sims} cascades)");
    }
    Ok(())
}

/// Runs DiIMM on an op-driven cluster (spawned or joined) and has every
/// worker persist its resident shard — each process writes its own file,
/// the shard never crosses the wire.
#[cfg(feature = "proc-backend")]
fn sample_on_ops<B: OpCluster>(
    cluster: &mut B,
    g: &Graph,
    config: &ImConfig,
    out: &std::path::Path,
) -> Result<ImResult, String> {
    setup_im_cluster(cluster, g, config.sampler).map_err(|e| e.to_string())?;
    let mut r = diimm_on(cluster, g, config, true).map_err(|e| e.to_string())?;
    persist_rr_shards(cluster, out, g, config, r.num_rr_sets as u64)
        .map_err(|e| e.to_string())?;
    let timeline = cluster.timeline().clone();
    r.timings = Timings::from_timeline(&timeline);
    r.metrics = timeline.total();
    r.timeline = timeline;
    Ok(r)
}

fn cmd_sample(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let (config, _) = im_config(flags, &g)?;
    let algorithm = flags.get("algorithm").unwrap_or("diimm");
    if !matches!(algorithm, "diimm" | "subsim") {
        return Err("sample persists a DiIMM sketch; use --algorithm diimm|subsim".into());
    }
    let machines = flags.num("machines", 1usize)?;
    let out = std::path::PathBuf::from(flags.required("out")?);
    let keep = flags.num("keep", 3usize)?;
    let net = NetworkModel::shared_memory();
    // With --generations the shards land in a fresh gen-N/ directory that
    // becomes visible to loaders only once the manifest commits below, so
    // a concurrently running `dim serve --store OUT` never sees a
    // half-written snapshot.
    let (gen_id, dir) = if flags.get("generations").is_some() {
        let (id, dir) = begin_generation(&out).map_err(|e| e.to_string())?;
        (Some(id), dir)
    } else {
        (None, out.clone())
    };
    let r = match backend_of(flags)? {
        Backend::Sim(mode) => diimm_sample(&g, &config, machines, net, mode, &dir)
            .map_err(|e| e.to_string())?,
        #[cfg(feature = "proc-backend")]
        Backend::Proc => {
            let mut cluster = proc_cluster(machines, net, config.seed)?;
            sample_on_ops(&mut cluster, &g, &config, &dir)?
        }
        #[cfg(feature = "proc-backend")]
        Backend::Join => {
            let mut cluster = join_cluster(machines, net, config.seed, flags)?;
            sample_on_ops(&mut cluster, &g, &config, &dir)?
        }
    };
    if let Some(id) = gen_id {
        commit_generation(&dir, id).map_err(|e| e.to_string())?;
        gc_generations(&out, keep).map_err(|e| e.to_string())?;
    }
    println!("seeds: {:?}", r.seeds);
    println!(
        "estimated spread: {:.1} ({} RR sets)",
        r.est_spread, r.num_rr_sets
    );
    match gen_id {
        Some(id) => println!(
            "sketch: generation {id}, {machines} shard(s) in {}",
            dir.display()
        ),
        None => println!("sketch: {machines} shard(s) in {}", out.display()),
    }
    if flags.get("breakdown").is_some() {
        print_breakdown(&r.timeline);
    }
    Ok(())
}

/// Pulls one JSON field value out of a single-line object without a JSON
/// dependency: finds `"key"`, skips `:` and whitespace, and returns the
/// raw token up to the next `,`/`}` (or the quoted string contents).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// One edit line: `{"op":"insert","u":1,"v":2,"p":0.5}` (or `delete` /
/// `reweight`; `delete` needs no `p`).
fn parse_edit(line: &str) -> Result<EdgeOp, String> {
    let op = json_field(line, "op").ok_or("missing \"op\"")?;
    let node = |key: &str| -> Result<u32, String> {
        let raw = json_field(line, key).ok_or(format!("missing \"{key}\""))?;
        raw.parse().map_err(|_| format!("bad \"{key}\" value {raw:?}"))
    };
    let prob = || -> Result<f32, String> {
        let raw = json_field(line, "p").ok_or("missing \"p\"")?;
        raw.parse().map_err(|_| format!("bad \"p\" value {raw:?}"))
    };
    let (u, v) = (node("u")?, node("v")?);
    match op {
        "insert" => Ok(EdgeOp::Insert { u, v, p: prob()? }),
        "delete" => Ok(EdgeOp::Delete { u, v }),
        "reweight" => Ok(EdgeOp::Reweight { u, v, p: prob()? }),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn cmd_stream(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let (config, _) = im_config(flags, &g)?;
    let algorithm = flags.get("algorithm").unwrap_or("diimm");
    if !matches!(algorithm, "diimm" | "subsim") {
        return Err("stream repairs a DiIMM sketch; use --algorithm diimm|subsim".into());
    }
    let root = std::path::PathBuf::from(flags.required("store")?);
    let edits_path = flags.required("apply")?;
    let keep = flags.num("keep", 3usize)?;
    let batch_size = flags.num("batch-size", 0usize)?;
    let mode = match backend_of(flags)? {
        Backend::Sim(mode) => mode,
        #[cfg(feature = "proc-backend")]
        _ => return Err("stream repairs the sketch locally; use a simulated backend".into()),
    };

    let text = std::fs::read_to_string(edits_path)
        .map_err(|e| format!("cannot read {edits_path}: {e}"))?;
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        ops.push(parse_edit(line).map_err(|e| format!("{edits_path}:{}: {e}", i + 1))?);
    }
    if ops.is_empty() {
        return Err(format!("{edits_path} holds no edits"));
    }

    let net = NetworkModel::shared_memory();
    let mut session = StreamSession::open(&g, &config, &root, net, mode)
        .map_err(|e| e.to_string())?;
    println!(
        "stream: resumed at generation {} (seq {}, {} machine(s))",
        session.generation(),
        session.next_seq(),
        session.num_machines()
    );
    let chunk = if batch_size == 0 { ops.len() } else { batch_size };
    let mut total_ops = 0usize;
    let mut total_repaired = 0u64;
    let start = std::time::Instant::now();
    for batch in ops.chunks(chunk) {
        let applied = session
            .apply(batch.to_vec(), true, keep)
            .map_err(|e| e.to_string())?;
        total_ops += applied.ops;
        total_repaired += applied.sets_repaired;
        println!(
            "stream: batch seq {} ({} op(s)) -> generation {}, {} RR set(s) repaired",
            session.next_seq() - 1,
            applied.ops,
            applied.generation.expect("persisted apply commits"),
            applied.sets_repaired
        );
    }
    let elapsed = start.elapsed();
    println!(
        "stream: {total_ops} edit(s) applied, {total_repaired} RR set(s) repaired \
         in {:.3}s ({:.0} edits/s)",
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if flags.get("compact").is_some() {
        match session.compact(keep).map_err(|e| e.to_string())? {
            Some(id) => println!("stream: compacted chain into base generation {id}"),
            None => println!("stream: nothing to compact"),
        }
    }
    if flags.get("select").is_some() {
        let r = session.select().map_err(|e| e.to_string())?;
        println!("seeds: {:?}", r.seeds);
        println!(
            "estimated spread: {:.1} ({} RR sets)",
            r.est_spread, r.num_rr_sets
        );
    }
    Ok(())
}

/// SIGHUP → hot reload, the classic daemon idiom. Raw FFI against libc's
/// `signal` keeps this dependency-free; the handler only flips an atomic,
/// the actual store re-scan runs on the serve loop below.
#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    static PENDING: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sighup(_signum: i32) {
        PENDING.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGHUP: i32 = 1;
        unsafe {
            signal(SIGHUP, on_sighup);
        }
    }

    pub fn take() -> bool {
        PENDING.swap(false, Ordering::SeqCst)
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    if let Some(path) = flags.get("tenants") {
        return cmd_serve_multi(flags, path);
    }
    let g = load_graph(flags)?;
    let (config, _) = im_config(flags, &g)?;
    let dir = std::path::PathBuf::from(flags.required("store")?);
    let (generation, snapshot) =
        load_latest_rr_snapshot(&g, &config, &dir).map_err(|e| e.to_string())?;
    let (theta, shard_count) = (snapshot.theta, snapshot.shard_count);
    let sketch = Sketch::from_snapshot(g.num_nodes(), snapshot);
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7117");
    let options = ServeOptions {
        workers: flags.num("workers", 8usize)?,
        max_conns: flags.num("max-conns", 1024usize)?,
        generation,
        reload: Some(ReloadSource {
            root: dir.clone(),
            request: rr_snapshot_request(&g, &config),
            num_nodes: g.num_nodes(),
        }),
    };
    let server = Server::start_with(addr, sketch, options)
        .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    let max_queries = flags.num("max-queries", 0u64)?;
    println!(
        "dim-serve: listening on {} ({theta} RR sets in {shard_count} shard(s), n = {}, \
         generation {generation})",
        server.local_addr(),
        g.num_nodes()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    #[cfg(unix)]
    sighup::install();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        #[cfg(unix)]
        if sighup::take() {
            match server.reload() {
                Ok((id, true)) => println!("dim-serve: reloaded, now at generation {id}"),
                Ok((id, false)) => println!("dim-serve: already at generation {id}"),
                Err(e) => eprintln!("dim-serve: reload failed: {e}"),
            }
            let _ = std::io::stdout().flush();
        }
        if max_queries > 0 && server.queries_answered() >= max_queries {
            break;
        }
    }
    let answered = server.queries_answered();
    let m = server.metrics();
    server.shutdown();
    println!("dim-serve: shut down after {answered} queries");
    println!(
        "dim-serve: generation {}, latency p50 {}µs p95 {}µs p99 {}µs, \
         {} shed, {} reload(s)",
        m.active_generation, m.p50_us, m.p95_us, m.p99_us, m.shed, m.reloads
    );
    Ok(())
}

/// `dim serve --tenants TENANTS.json`: one daemon, one namespace per
/// tenant. Each tenant's graph/store come from its registry entry,
/// falling back to the run-wide `--graph` / `--store`; every tenant gets
/// its own sketch, generation counter, and reload source, so a SIGHUP
/// reload of one store never disturbs the others.
fn cmd_serve_multi(flags: &Flags, path: &str) -> Result<(), String> {
    let registry = TenantRegistry::from_file(path)
        .map_err(|e| format!("cannot load tenant registry {path}: {e}"))?;
    let mut binds = Vec::with_capacity(registry.len());
    for spec in registry.iter() {
        let src = match &spec.graph {
            Some(src) => src.clone(),
            None => flags
                .required("graph")
                .map_err(|_| {
                    format!(
                        "tenant {:?} names no graph and no --graph fallback was given",
                        spec.id
                    )
                })?
                .to_string(),
        };
        let g = load_graph_spec(&src, flags)?;
        let (config, _) = im_config(flags, &g)?;
        let dir = match &spec.store {
            Some(dir) => dir.clone(),
            None => std::path::PathBuf::from(flags.required("store").map_err(|_| {
                format!(
                    "tenant {:?} names no store and no --store fallback was given",
                    spec.id
                )
            })?),
        };
        let (generation, snapshot) = load_latest_rr_snapshot(&g, &config, &dir)
            .map_err(|e| format!("tenant {:?}: {e}", spec.id))?;
        println!(
            "dim-serve: tenant {:?}: {} RR sets in {} shard(s), n = {}, generation {}",
            spec.id,
            snapshot.theta,
            snapshot.shard_count,
            g.num_nodes(),
            generation
        );
        binds.push(TenantBind {
            spec: spec.clone(),
            sketch: Sketch::from_snapshot(g.num_nodes(), snapshot),
            generation,
            reload: Some(ReloadSource {
                root: dir,
                request: rr_snapshot_request(&g, &config),
                num_nodes: g.num_nodes(),
            }),
        });
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7117");
    let options = ServeOptions {
        workers: flags.num("workers", 8usize)?,
        max_conns: flags.num("max-conns", 1024usize)?,
        ..ServeOptions::default()
    };
    let tenant_count = binds.len();
    let server = Server::start_multi(addr, binds, options)
        .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    let max_queries = flags.num("max-queries", 0u64)?;
    println!(
        "dim-serve: listening on {} ({tenant_count} tenant(s), auth required)",
        server.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    #[cfg(unix)]
    sighup::install();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        #[cfg(unix)]
        if sighup::take() {
            for (id, outcome) in server.reload_all() {
                match outcome {
                    Ok((gen, true)) => {
                        println!("dim-serve: tenant {id:?} reloaded, now at generation {gen}")
                    }
                    Ok((gen, false)) => {
                        println!("dim-serve: tenant {id:?} already at generation {gen}")
                    }
                    Err(e) => eprintln!("dim-serve: tenant {id:?} reload failed: {e}"),
                }
            }
            let _ = std::io::stdout().flush();
        }
        if max_queries > 0 && server.queries_answered() >= max_queries {
            break;
        }
    }
    let answered = server.queries_answered();
    let per_tenant = server.tenant_metrics();
    let m = server.metrics();
    server.shutdown();
    println!("dim-serve: shut down after {answered} queries");
    for (id, t) in per_tenant {
        println!(
            "dim-serve: tenant {id:?}: generation {}, {} queries, {} quota-shed, \
             {} reload(s), p99 {}µs",
            t.active_generation, t.queries_answered, t.quota_shed, t.reloads, t.p99_us
        );
    }
    println!(
        "dim-serve: all tenants: latency p50 {}µs p95 {}µs p99 {}µs, {} shed",
        m.p50_us, m.p95_us, m.p99_us, m.shed
    );
    Ok(())
}

fn parse_ids(list: &str) -> Result<Vec<u32>, String> {
    list.split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad node id {s:?}")))
        .collect()
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let timeout = flags.num("timeout", 0u64)?;
    // --tenant/--token beat the DIM_TENANT/DIM_TOKEN environment; either
    // way the token is hashed before it touches the wire.
    let credentials = match flags.get("tenant") {
        Some(tenant) => Some(Credentials::new(
            tenant,
            flags
                .get("token")
                .map(str::to_string)
                .or_else(|| std::env::var("DIM_TOKEN").ok())
                .unwrap_or_default(),
        )),
        None => Credentials::from_env(),
    };
    let mut client = if timeout > 0 {
        let options = ConnectOptions {
            deadline: std::time::Duration::from_secs(timeout),
            credentials,
            ..ConnectOptions::default()
        };
        QueryClient::connect_with(addr, &options)
    } else {
        QueryClient::connect(addr).and_then(|mut client| {
            if let Some(creds) = &credentials {
                client.authenticate(creds)?;
            }
            Ok(client)
        })
    }
    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if flags.get("reload").is_some() {
        let (generation, changed) = client.reload().map_err(|e| e.to_string())?;
        println!(
            "generation {generation} ({})",
            if changed { "reloaded" } else { "unchanged" }
        );
        return Ok(());
    }
    if flags.get("stats").is_some() {
        let s = client.stats().map_err(|e| e.to_string())?;
        println!(
            "sketch: n = {}, {} RR sets in {} shard(s), total size {}",
            s.num_nodes, s.theta, s.shard_count, s.total_rr_size
        );
        println!("queries answered: {}", s.queries_answered);
        println!("generation: {}", s.generation);
        println!(
            "latency: p50 {}µs, p95 {}µs, p99 {}µs ({} connection(s) shed, \
             {} quota-shed)",
            s.p50_us, s.p95_us, s.p99_us, s.shed, s.quota_shed
        );
        return Ok(());
    }
    if let Some(seeds) = flags.get("seeds") {
        let seeds = parse_ids(seeds)?;
        let (covered, spread) = client.spread(&seeds).map_err(|e| e.to_string())?;
        println!("estimated spread: {spread:.2} ({covered} RR sets covered)");
        return Ok(());
    }
    let k: u32 = flags.num("k", 0u32)?;
    if k == 0 {
        return Err("query needs --stats, --reload, --seeds a,b,c, or --k K".into());
    }
    let include = flags.get("include").map(parse_ids).transpose()?.unwrap_or_default();
    let exclude = flags.get("exclude").map(parse_ids).transpose()?.unwrap_or_default();
    let r = client.top_k(k, &include, &exclude).map_err(|e| e.to_string())?;
    println!("seeds: {:?}", r.seeds);
    println!("marginals: {:?}", r.marginals);
    println!(
        "estimated spread: {:.1} ({} RR sets covered)",
        r.spread, r.covered
    );
    Ok(())
}

/// Per-phase stacked-bar rows (`--breakdown`): modeled compute and
/// communication, measured wall-clock transfer (process backend only),
/// and bytes in each direction.
fn print_breakdown(timeline: &PhaseTimeline) {
    if timeline.is_empty() {
        println!("breakdown: no phases recorded");
        return;
    }
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "phase", "compute (s)", "comm (s)", "measured (s)", "to master (B)", "from master (B)"
    );
    for (label, m) in timeline.iter() {
        println!(
            "{:<18} {:>12.6} {:>12.6} {:>12.6} {:>14} {:>14}",
            label,
            m.compute().as_secs_f64(),
            m.comm_time.as_secs_f64(),
            m.measured_comm.as_secs_f64(),
            m.bytes_to_master,
            m.bytes_from_master,
        );
    }
}

/// Runs NewGreeDi over an op-driven cluster (spawned or joined): ships
/// each machine its element partition, then executes the identical phase
/// ops the simulated backends run.
#[cfg(feature = "proc-backend")]
fn coverage_on_ops<B: OpCluster>(
    cluster: &mut B,
    problem: &CoverageProblem,
    shards: &[CoverageShard],
    k: usize,
) -> Result<(dim_coverage::NewGreediResult, ClusterMetrics, PhaseTimeline), String> {
    let replies = cluster
        .control(phase::SETUP, |i| WorkerOp::BuildShard {
            num_sets: problem.num_sets() as u32,
            elements: shards[i].elements().iter().map(<[u32]>::to_vec).collect(),
        })
        .map_err(|e| e.to_string())?;
    dim_cluster::ops::expect_ok(&replies, phase::SETUP).map_err(|e| e.to_string())?;
    let r = dim_coverage::newgreedi_with(cluster, problem.num_sets(), k)
        .map_err(|e| e.to_string())?;
    Ok((r, cluster.metrics(), cluster.timeline().clone()))
}

fn cmd_coverage(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let k = flags.num("k", 50usize)?.min(g.num_nodes());
    let machines = flags.num("machines", 1usize)?;
    let net = NetworkModel::shared_memory();
    let problem = CoverageProblem::from_graph_neighborhoods(&g);
    let shards = problem.shard_elements(machines);
    let (r, metrics, timeline) = match backend_of(flags)? {
        Backend::Sim(mode) => {
            let mut cluster = SimCluster::new(shards, net, mode);
            let r = newgreedi(&mut cluster, k).map_err(|e| e.to_string())?;
            (r, cluster.metrics(), cluster.timeline().clone())
        }
        #[cfg(feature = "proc-backend")]
        Backend::Proc => {
            let seed = flags.num("seed", 42u64)?;
            let mut cluster = proc_cluster(machines, net, seed)?;
            coverage_on_ops(&mut cluster, &problem, &shards, k)?
        }
        #[cfg(feature = "proc-backend")]
        Backend::Join => {
            let seed = flags.num("seed", 42u64)?;
            let mut cluster = join_cluster(machines, net, seed, flags)?;
            coverage_on_ops(&mut cluster, &problem, &shards, k)?
        }
    };
    println!("sets: {:?}", r.seeds);
    println!(
        "covered {} / {} elements ({:.1}%)",
        r.covered,
        problem.num_elements(),
        100.0 * r.fraction(problem.num_elements())
    );
    println!("{metrics}");
    if flags.get("breakdown").is_some() {
        print_breakdown(&timeline);
    }
    Ok(())
}

/// Replays a `FaultPlan` against a live run and asserts the recovered
/// result is byte-identical to a fault-free reference — the chaos-CI
/// entry point. The reference always runs on the deterministic
/// sequential simulator; the chaos run goes to `--backend` (sim modes
/// interpret the plan in virtual time, `proc` injects it at the socket
/// layer when built with the `chaos` feature). Divergence is a hard
/// error, so the exit code is the assertion.
fn cmd_chaos(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let (config, _) = im_config(flags, &g)?;
    let algorithm = flags.get("algorithm").unwrap_or("diimm");
    if !matches!(algorithm, "diimm" | "subsim") {
        return Err("chaos replays a DiIMM run; use --algorithm diimm|subsim".into());
    }
    let machines = flags.num("machines", 2usize)?;
    let plan_path = flags.required("plan")?;
    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| format!("cannot read {plan_path}: {e}"))?;
    let plan = FaultPlan::from_json(&text).map_err(|e| format!("{plan_path}: {e}"))?;
    let policy = RecoveryPolicy {
        min_survivors: flags.num("min-survivors", 0usize)?,
        straggler_deadline: match flags.num("straggler-ms", 0u64)? {
            0 => std::time::Duration::MAX,
            ms => std::time::Duration::from_millis(ms),
        },
        source: match flags.get("recover-from") {
            Some(dir) => RecoverySource::Store(dir.into()),
            None => RecoverySource::Resample,
        },
    };
    let net = NetworkModel::shared_memory();

    // The fault-free reference: same graph/config/ℓ on the deterministic
    // simulator. Backend equivalence makes this the right target for the
    // proc backend too.
    let reference = diimm(&g, &config, machines, net, ExecMode::Sequential)
        .map_err(|e| format!("reference run failed: {e}"))?;

    let injector = FaultInjector::new(plan, machines);
    let run = match backend_of(flags)? {
        Backend::Sim(mode) => {
            let workers: Vec<_> = (0..machines)
                .map(|i| dim_core::diimm::DiimmWorker::new(&g, &config, i))
                .collect();
            let cluster = SimCluster::new(workers, net, mode).with_faults(injector);
            diimm_on_recovering(cluster, &g, &config, true, policy).map_err(|e| e.to_string())?
        }
        #[cfg(feature = "proc-backend")]
        Backend::Proc => {
            #[cfg(feature = "chaos")]
            {
                let mut cluster = proc_cluster(machines, net, config.seed)?;
                setup_im_cluster(&mut cluster, &g, config.sampler).map_err(|e| e.to_string())?;
                // Armed after setup, so plan rounds count op rounds from
                // the first algorithm phase — same clock as the simulator.
                cluster.set_chaos(Some(injector));
                diimm_on_recovering(cluster, &g, &config, true, policy)
                    .map_err(|e| e.to_string())?
            }
            #[cfg(not(feature = "chaos"))]
            {
                return Err("--backend proc chaos injection needs the `chaos` feature \
                            (cargo build --features chaos)"
                    .into());
            }
        }
        #[cfg(feature = "proc-backend")]
        Backend::Join => {
            return Err("chaos replay drives sequential|threads|rayon|proc backends".into())
        }
    };

    println!("chaos: replayed {plan_path} on {machines} machine(s)");
    match &run.degraded {
        None => println!("chaos: completed clean (no machine lost, no stragglers)"),
        Some(d) => {
            println!(
                "chaos: degraded — lost machine(s) {:?}, {} RR set(s) rebuilt, \
                 {} straggler event(s)",
                d.lost,
                d.rebuilt_sets,
                d.stragglers.len()
            );
            for ev in &d.stragglers {
                println!(
                    "chaos:   straggler: {} took {:.3}s (deadline {:.3}s)",
                    ev.phase,
                    ev.observed.as_secs_f64(),
                    ev.deadline.as_secs_f64()
                );
            }
        }
    }
    if run.result.seeds != reference.seeds || run.result.marginals != reference.marginals {
        return Err(format!(
            "DIVERGENCE: chaos run selected {:?}, fault-free reference {:?}",
            run.result.seeds, reference.seeds
        ));
    }
    println!("chaos: seeds and marginals byte-identical to the fault-free reference");
    println!("seeds: {:?}", run.result.seeds);
    println!(
        "estimated spread: {:.1} ({} RR sets)",
        run.result.est_spread, run.result.num_rr_sets
    );
    if flags.get("breakdown").is_some() {
        print_breakdown(&run.result.timeline);
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let model = model_of(flags)?;
    let seeds = parse_ids(flags.required("seeds")?)?;
    if let Some(&bad) = seeds.iter().find(|&&s| s as usize >= g.num_nodes()) {
        return Err(format!("seed {bad} out of range (n = {})", g.num_nodes()));
    }
    let sims = flags.num("sims", 10_000usize)?;
    let spread = estimate_spread(&g, model, &seeds, sims, flags.num("seed", 42u64)?);
    println!(
        "σ({:?}) ≈ {spread:.2} under {model} ({sims} cascades)",
        seeds
    );
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let spec = flags.required("profile")?;
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("");
    let profile =
        DatasetProfile::parse(name).ok_or_else(|| format!("unknown profile {name:?}"))?;
    let scale: f64 = match parts.next() {
        None => default_scale(profile),
        Some(s) => s.parse().map_err(|_| format!("bad scale {s:?}"))?,
    };
    let out = flags.required("out")?;
    let g = profile.generate_with(scale, weight_model(flags)?, flags.num("seed", 42u64)?);
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    dim_graph::io::write_edge_list(&g, file).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}
