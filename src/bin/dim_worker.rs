//! Worker-process binary for the TCP process backend.
//!
//! One instance per machine of a [`dim_cluster::tcp::ProcCluster`] (spawn
//! mode) or of a [`dim_cluster::rendezvous::JoinCluster`] (join mode): a
//! [`dim_core::WorkerHost`] that connects to the master, completes the
//! JOIN/WELCOME/HELLO handshake, then serves [`dim_cluster::WorkerOp`]s
//! against its resident state.
//!
//! ```text
//! # spawn mode — launched BY the master, pinned id and seed:
//! dim-worker --addr 127.0.0.1:PORT --machine-id N --master-seed S
//!
//! # join mode — pre-started by an operator, registers with the master:
//! dim-worker --connect HOST:PORT --join [--machine-id N] [--join-deadline SECS]
//! ```
//!
//! In join mode the worker retries its registration with jittered
//! exponential backoff until `--join-deadline` (or
//! `DIM_JOIN_DEADLINE_SECS`) expires, serves the session, then loops back
//! to join the *next* session against the same master — its loaded graph
//! survives across sessions. Once at least one session has been served, a
//! master that can no longer be reached means the run is over: the worker
//! logs it and exits 0.
//!
//! The master address may also come from the `DIM_WORKER_ADDR` environment
//! variable (`--addr` and `--connect` are aliases; flags win). The
//! `DIM_WORKER_FAULT` environment variable (e.g. `truncate-upload:1`)
//! injects protocol faults for resilience tests.

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use dim::dim_core::WorkerHost;
use dim_cluster::rendezvous::{self, JoinOptions};
use dim_cluster::tcp::{run_worker_with_fault, WorkerFault};

/// How long a join-mode worker that has already served a session keeps
/// trying to re-register before concluding the master is gone (used when
/// no explicit deadline is configured).
const REJOIN_GRACE: Duration = Duration::from_secs(10);

fn main() -> ExitCode {
    let mut addr = None;
    let mut machine_id: Option<u32> = None;
    let mut master_seed: Option<u64> = None;
    let mut join = false;
    let mut join_deadline: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => Some(v),
            None => {
                eprintln!("dim-worker: {name} requires a value");
                None
            }
        };
        match arg.as_str() {
            "--addr" | "--connect" => addr = take("--addr"),
            "--machine-id" => machine_id = take("--machine-id").and_then(|v| v.parse().ok()),
            "--master-seed" => master_seed = take("--master-seed").and_then(|v| v.parse().ok()),
            "--join" => join = true,
            "--join-deadline" => {
                join_deadline = take("--join-deadline")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs)
            }
            other => {
                eprintln!("dim-worker: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let addr = addr.or_else(|| std::env::var("DIM_WORKER_ADDR").ok());
    let fault = std::env::var("DIM_WORKER_FAULT")
        .ok()
        .as_deref()
        .and_then(WorkerFault::parse);

    if join {
        let Some(addr) = addr else {
            eprintln!("usage: dim-worker --connect HOST:PORT --join [--machine-id N] [--join-deadline SECS]");
            return ExitCode::from(2);
        };
        return run_join_mode(&addr, machine_id, join_deadline, fault);
    }

    let (Some(addr), Some(id), Some(seed)) = (addr, machine_id, master_seed) else {
        eprintln!("usage: dim-worker --addr HOST:PORT --machine-id N --master-seed S");
        eprintln!("       dim-worker --connect HOST:PORT --join [--machine-id N] [--join-deadline SECS]");
        eprintln!("       (HOST:PORT may also come from DIM_WORKER_ADDR)");
        return ExitCode::from(2);
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dim-worker: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut host = WorkerHost::new(id as usize, seed);
    match run_worker_with_fault(stream, id, seed, &mut host, fault) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dim-worker {id}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The join-mode loop: register → serve a session → re-register, keeping
/// one long-lived [`WorkerHost`] (and its loaded graph) across sessions.
fn run_join_mode(
    addr: &str,
    requested: Option<u32>,
    deadline: Option<Duration>,
    fault: Option<WorkerFault>,
) -> ExitCode {
    let deadline = deadline.or_else(rendezvous::join_deadline_env);
    let mut host = WorkerHost::new(requested.unwrap_or(0) as usize, 0);
    let mut sessions_served = 0u64;
    loop {
        let opts = JoinOptions {
            requested,
            caps: rendezvous::caps::ALL,
            // After the first session the master may legitimately be gone;
            // bound the re-join so the worker can notice and exit clean.
            deadline: deadline.or((sessions_served > 0).then_some(REJOIN_GRACE)),
        };
        match rendezvous::run_join_worker(addr, &opts, fault, |welcome| {
            host.reset_session(welcome.machine_id as usize, welcome.master_seed);
            eprintln!(
                "dim-worker: joined session {} as machine {} of {}",
                welcome.session, welcome.machine_id, welcome.cluster_size
            );
            &mut host
        }) {
            Ok(session) => {
                sessions_served += 1;
                eprintln!(
                    "dim-worker: session {} ended ({:?}); re-registering",
                    session.welcome.session, session.end
                );
            }
            Err(e) if sessions_served > 0 => {
                eprintln!(
                    "dim-worker: master unreachable after {sessions_served} session(s) ({e}); done"
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("dim-worker: join {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}
