//! Worker-process binary for the TCP process backend.
//!
//! One instance per machine of a [`dim_cluster::tcp::ProcCluster`]:
//! connects back to the master, handshakes with its machine id and derived
//! stream seed, then serves upload/download requests until SHUTDOWN.
//!
//! ```text
//! dim-worker --connect 127.0.0.1:PORT --machine-id N --master-seed S
//! ```
//!
//! The `DIM_WORKER_FAULT` environment variable (e.g. `truncate-upload:1`)
//! injects protocol faults for resilience tests.

use std::net::TcpStream;
use std::process::ExitCode;

use dim_cluster::tcp::{run_worker_with_fault, WorkerFault};

fn main() -> ExitCode {
    let mut connect = None;
    let mut machine_id = None;
    let mut master_seed = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => Some(v),
            None => {
                eprintln!("dim-worker: {name} requires a value");
                None
            }
        };
        match arg.as_str() {
            "--connect" => connect = take("--connect"),
            "--machine-id" => machine_id = take("--machine-id").and_then(|v| v.parse().ok()),
            "--master-seed" => master_seed = take("--master-seed").and_then(|v| v.parse().ok()),
            other => {
                eprintln!("dim-worker: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(addr), Some(id), Some(seed)) = (connect, machine_id, master_seed) else {
        eprintln!("usage: dim-worker --connect HOST:PORT --machine-id N --master-seed S");
        return ExitCode::from(2);
    };
    let fault = std::env::var("DIM_WORKER_FAULT")
        .ok()
        .as_deref()
        .and_then(WorkerFault::parse);
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dim-worker: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_worker_with_fault(stream, id, seed, fault) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dim-worker {id}: {e}");
            ExitCode::FAILURE
        }
    }
}
