//! Worker-process binary for the TCP process backend.
//!
//! One instance per machine of a [`dim_cluster::tcp::ProcCluster`]: an
//! empty [`dim_core::WorkerHost`] that connects back to the master,
//! handshakes with its machine id and derived stream seed, then serves
//! [`dim_cluster::WorkerOp`]s against its resident state until a
//! `Shutdown` op or master disconnect — either way it logs the reason and
//! exits 0.
//!
//! ```text
//! dim-worker --addr 127.0.0.1:PORT --machine-id N --master-seed S
//! ```
//!
//! The master address may also come from the `DIM_WORKER_ADDR` environment
//! variable (`--addr` wins). `--connect` is accepted as an alias for
//! `--addr`. The `DIM_WORKER_FAULT` environment variable (e.g.
//! `truncate-upload:1`) injects protocol faults for resilience tests.

use std::net::TcpStream;
use std::process::ExitCode;

use dim_cluster::tcp::{run_worker_with_fault, WorkerFault};
use dim::dim_core::WorkerHost;

fn main() -> ExitCode {
    let mut addr = None;
    let mut machine_id = None;
    let mut master_seed = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => Some(v),
            None => {
                eprintln!("dim-worker: {name} requires a value");
                None
            }
        };
        match arg.as_str() {
            "--addr" | "--connect" => addr = take("--addr"),
            "--machine-id" => machine_id = take("--machine-id").and_then(|v| v.parse().ok()),
            "--master-seed" => master_seed = take("--master-seed").and_then(|v| v.parse().ok()),
            other => {
                eprintln!("dim-worker: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let addr = addr.or_else(|| std::env::var("DIM_WORKER_ADDR").ok());
    let (Some(addr), Some(id), Some(seed)) = (addr, machine_id, master_seed) else {
        eprintln!("usage: dim-worker --addr HOST:PORT --machine-id N --master-seed S");
        eprintln!("       (HOST:PORT may also come from DIM_WORKER_ADDR)");
        return ExitCode::from(2);
    };
    let fault = std::env::var("DIM_WORKER_FAULT")
        .ok()
        .as_deref()
        .and_then(WorkerFault::parse);
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dim-worker: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut host = WorkerHost::new(id as usize, seed);
    match run_worker_with_fault(stream, id, seed, &mut host, fault) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dim-worker {id}: {e}");
            ExitCode::FAILURE
        }
    }
}
