//! # dim — Distributed Influence Maximization
//!
//! A Rust reproduction of *"Distributed Influence Maximization for
//! Large-Scale Online Social Networks"* (Tang, Tang, Zhu, Han — ICDE 2022):
//! RIS-based influence maximization with the state-of-the-art
//! `(1 − 1/e − ε)` approximation guarantee, horizontally scaled across a
//! cluster of machines via
//!
//! * **distributed reverse influence sampling** — each machine generates
//!   and keeps its own share of the random RR sets, and
//! * **NewGreeDi** — element-distributed maximum coverage that returns
//!   *exactly* the centralized greedy solution (unlike set-distributed
//!   composable core-sets, whose ratio degrades with the machine count).
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for the full surface:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`dim_graph`] | CSR graphs, edge-list IO, synthetic social-network generators, dataset profiles |
//! | [`dim_diffusion`] | IC/LT diffusion, Monte-Carlo + exact spread, RR-set samplers (BFS / walk / SUBSIM) |
//! | [`dim_cluster`] | pluggable `ClusterBackend` execution layer with phase-labeled metrics timelines |
//! | [`dim_coverage`] | maximum coverage: bucket/CELF greedy, NewGreeDi, GreeDi/RandGreeDi baselines |
//! | [`dim_core`] | IMM, DiIMM, and SUBSIM with the `(1 − 1/e − ε)` guarantee |
//! | [`dim_store`] | versioned on-disk RR-sketch snapshots (`dim sample` / `--load-rr`) |
//! | [`dim_serve`] | concurrent influence-query service over a persisted sketch (`dim serve`) |
//!
//! # Quickstart
//!
//! ```
//! use dim::prelude::*;
//!
//! // A small scale-free network with weighted-cascade probabilities.
//! let graph = barabasi_albert(500, 4, WeightModel::WeightedCascade, 7);
//!
//! // Find 10 seeds with (1 − 1/e − ε) guarantee on 4 simulated machines.
//! let config = ImConfig::paper_defaults(&graph, 0.3, 42);
//! let config = ImConfig { k: 10, ..config };
//! let result = diimm(&graph, &config, 4, NetworkModel::cluster_1gbps(), ExecMode::Sequential)
//!     .expect("simulated-cluster wire messages are well-formed");
//!
//! assert_eq!(result.seeds.len(), 10);
//! println!("estimated spread: {:.1}", result.est_spread);
//! ```

pub use dim_cluster;
pub use dim_core;
pub use dim_coverage;
pub use dim_diffusion;
pub use dim_graph;
pub use dim_serve;
pub use dim_store;

/// The commonly needed types and functions in one import.
pub mod prelude {
    pub use dim_cluster::{
        phase, stream_seed, ClusterBackend, ClusterMetrics, ExecMode, FaultEvent, FaultEventKind,
        FaultInjector, FaultPlan, LinkDecision, LinkFault, NetworkModel, OpCluster, OpExecutor,
        Partition, PhaseTimeline, SamplerSpec, SimCluster, WireError, WireErrorKind, WorkerOp,
        WorkerReply, WorkerStats,
    };
    #[cfg(feature = "proc-backend")]
    pub use dim_cluster::{
        JoinCluster, JoinConfig, JoinOptions, ProcCluster, Rendezvous, SessionEnd,
    };
    pub use dim_core::diimm::{diimm, diimm_on, diimm_with_options};
    pub use dim_core::extensions::{
        budgeted_im, seed_minimization, targeted_im, BudgetedImResult, SeedMinResult,
        TargetedImResult,
    };
    pub use dim_core::heuristics::{
        degree_discount, monte_carlo_greedy, random_seeds, top_degree, top_pagerank,
    };
    pub use dim_core::imm::imm;
    pub use dim_core::opim::{dopim_c, opim_c};
    pub use dim_core::ssa::{dssa, ssa};
    pub use dim_core::snapshot::{
        diimm_load_rr, diimm_sample, diimm_sample_generation, load_latest_rr_snapshot,
        load_rr_snapshot, persist_rr_shards, rr_snapshot_request, snapshot_shards, SnapshotError,
        StreamApplied, StreamSession,
    };
    pub use dim_core::recover::{
        diimm_on_recovering, DegradedOutcome, RecoveredRun, RecoveringCluster, RecoveryPolicy,
        RecoverySource, StragglerEvent,
    };
    pub use dim_core::{
        setup_im_cluster, ImConfig, ImParams, ImResult, SamplerKind, Timings, WorkerHost,
    };
    pub use dim_coverage::greedi::greedi;
    pub use dim_coverage::greedy::{bucket_greedy, celf_greedy};
    pub use dim_coverage::{
        budgeted_greedy, newgreedi, newgreedi_until, CoverageProblem, CoverageShard,
    };
    pub use dim_serve::{
        ConnectOptions, Credentials, QueryClient, QueryRequest, QueryResponse, ReloadSource,
        ServeMetrics, ServeOptions, Server, Sketch, SketchStats, TenantBind, TenantHandle,
        TenantQuota, TenantRegistry, TenantSpec,
    };
    pub use dim_store::{
        begin_generation, commit_generation, compact_generation, gc_generations,
        generation_dir_name, graph_fingerprint, latest_generation, list_generations,
        load_latest_chain, load_latest_snapshot, load_snapshot, read_graph_file, ChainInfo,
        Snapshot, SnapshotRequest, StoreError, GRAPH_FILE,
    };
    pub use dim_diffusion::exact::{exact_opt, exact_spread};
    pub use dim_diffusion::forward::{estimate_spread, estimate_spread_ci, SpreadEstimate};
    pub use dim_diffusion::{DiffusionModel, IcRrSampler, LtRrSampler, RrSampler, SubsimRrSampler};
    pub use dim_graph::generators::{
        barabasi_albert, chung_lu_directed, chung_lu_undirected, erdos_renyi, watts_strogatz,
    };
    pub use dim_graph::analysis::{influence_pagerank, pagerank};
    pub use dim_graph::scc::strongly_connected_components;
    pub use dim_graph::{
        apply_batch, DatasetProfile, DeltaBatch, EdgeOp, Graph, GraphBuilder, GraphStats, NodeId,
        WeightModel,
    };
}
