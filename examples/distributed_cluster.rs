//! Machine-count scaling — a miniature of the paper's Fig. 5.
//!
//! Runs DiIMM on the same workload with ℓ ∈ {1, 2, 4, 8, 16} simulated
//! machines (1 Gbps cluster network model) and prints the per-phase virtual
//! running time. Expect compute to shrink roughly as 1/ℓ while the
//! communication time grows with ℓ but stays an order of magnitude smaller
//! — the paper's headline observation.
//!
//! Run with: `cargo run --release --example distributed_cluster`

use dim::prelude::*;

fn main() {
    let graph = DatasetProfile::Facebook.generate(1.0, 3);
    let stats = GraphStats::compute(&graph);
    println!("workload: {stats}");
    let config = ImConfig::paper_defaults(&graph, 0.2, 5);
    println!(
        "k = {}, ε = {}, δ = 1/n, model = {}\n",
        config.k,
        config.epsilon,
        config.sampler.model()
    );

    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        "ℓ", "sampling", "selection", "comm", "total", "speedup", "traffic(KiB)"
    );
    let mut baseline = None;
    for machines in [1usize, 2, 4, 8, 16] {
        let r = diimm(
            &graph,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .expect("simulated cluster messages are well-formed");
        let total = r.timings.total().as_secs_f64();
        let baseline_total = *baseline.get_or_insert(total);
        println!(
            "{machines:>3} {:>11.3}s {:>11.3}s {:>11.3}s {:>11.3}s {:>8.1}x {:>12.1}",
            r.timings.sampling.as_secs_f64(),
            r.timings.selection.as_secs_f64(),
            r.timings.communication.as_secs_f64(),
            total,
            baseline_total / total,
            r.metrics.total_bytes() as f64 / 1024.0,
        );
    }
    println!("\n(Every configuration runs the identical sampling + NewGreeDi code path;");
    println!(" phase time is max-over-machines, communication priced as 1 Gbps tree collectives.)");
}
