//! Element-distributed vs set-distributed maximum coverage — a miniature
//! of the paper's Fig. 10 and §III-B comparison.
//!
//! The workload is the paper's §IV-C instance: the graph's nodes are the
//! ground elements and each node's out-neighborhood is a set; pick k = 50
//! sets maximizing the covered union. NewGreeDi (element-distributed)
//! always matches the centralized greedy exactly; GreeDi (set-distributed
//! composable core-sets, κ = k) loses coverage as machines are added.
//!
//! Run with: `cargo run --release --example max_coverage`

use dim::prelude::*;
use dim_cluster::SimCluster;

fn main() {
    let graph = DatasetProfile::LiveJournal.generate(0.01, 13);
    let stats = GraphStats::compute(&graph);
    println!("workload: {stats}");

    let problem = CoverageProblem::from_graph_neighborhoods(&graph);
    let k = 50;
    println!(
        "coverage instance: {} sets over {} elements (total size {}), k = {k}\n",
        problem.num_sets(),
        problem.num_elements(),
        problem.total_size()
    );

    // Centralized greedy is the quality reference (and the ℓ=1 time base).
    let mut shard = problem.single_shard();
    let central = bucket_greedy(&mut shard, k);
    println!("centralized greedy covers {} elements\n", central.covered);

    println!(
        "{:>3} {:>16} {:>16} {:>14} {:>14}",
        "ℓ", "NewGreeDi cov.", "GreeDi cov.", "ratio G/NG", "NG comm(KiB)"
    );
    for machines in [2usize, 4, 8, 16, 32, 64] {
        let mut ng_cluster = SimCluster::new(
            problem.shard_elements(machines),
            NetworkModel::shared_memory(),
            ExecMode::Sequential,
        );
        let ng = newgreedi(&mut ng_cluster, k).expect("well-formed wire");

        let mut g_cluster = SimCluster::new(
            problem.shard_sets(machines, None),
            NetworkModel::shared_memory(),
            ExecMode::Sequential,
        );
        let gd = greedi(&mut g_cluster, k, k);

        assert_eq!(
            ng.covered, central.covered,
            "NewGreeDi must equal centralized greedy (Lemma 2)"
        );
        println!(
            "{machines:>3} {:>16} {:>16} {:>14.4} {:>14.1}",
            ng.covered,
            gd.covered,
            gd.covered as f64 / ng.covered as f64,
            ng_cluster.metrics().total_bytes() as f64 / 1024.0,
        );
    }
    println!("\nNewGreeDi's coverage never moves — it IS the centralized greedy,");
    println!("computed without any machine ever holding the whole element set.");
}
