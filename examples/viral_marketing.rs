//! Viral marketing budget planning — the paper's motivating application.
//!
//! An advertiser can pay for `k` seed users; influence spreads by
//! word-of-mouth (IC model). This example sweeps the seed budget and shows
//! the submodular diminishing returns that make greedy near-optimal, then
//! contrasts the optimized seed set against the naive "pay the highest-
//! degree users" strategy.
//!
//! Run with: `cargo run --release --example viral_marketing`

use dim::prelude::*;

fn main() {
    // A friendship network shaped like the paper's Facebook dataset.
    // Uniform 3% propagation probabilities model a promotion where every
    // exposure has the same conversion chance. On preferential-attachment
    // graphs the high-degree users' friend circles overlap heavily, which
    // is exactly the redundancy greedy exploits and plain degree ranking
    // ignores.
    let graph = DatasetProfile::Facebook.generate_with(1.0, WeightModel::Uniform(0.03), 11);
    let stats = GraphStats::compute(&graph);
    println!("campaign network: {stats}\n");

    let model = DiffusionModel::IndependentCascade;
    println!("{:>6} {:>14} {:>16} {:>12}", "budget", "est. spread", "marginal gain", "spread/seed");
    let mut prev = 0.0;
    let mut best_seeds = Vec::new();
    for k in [1usize, 2, 5, 10, 25, 50] {
        let config = ImConfig {
            k,
            ..ImConfig::paper_defaults(&graph, 0.3, 4)
        };
        let result = diimm(&graph, &config, 4, NetworkModel::shared_memory(), ExecMode::Sequential)
            .expect("simulated cluster messages are well-formed");
        println!(
            "{k:>6} {:>14.1} {:>16.1} {:>12.2}",
            result.est_spread,
            result.est_spread - prev,
            result.est_spread / k as f64,
        );
        prev = result.est_spread;
        best_seeds = result.seeds;
    }

    // Baseline: just seed the k highest out-degree users.
    let k = best_seeds.len();
    let mut by_degree: Vec<u32> = graph.nodes().collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(graph.out_degree(u)));
    let degree_seeds = &by_degree[..k];

    let optimized = estimate_spread(&graph, model, &best_seeds, 5_000, 77);
    let degree = estimate_spread(&graph, model, degree_seeds, 5_000, 77);
    println!("\nhead-to-head at k = {k} (5k Monte-Carlo cascades each):");
    println!("  DiIMM seeds       : {optimized:.1} nodes reached");
    println!("  top-degree seeds  : {degree:.1} nodes reached");
    println!("  advantage         : {:+.1}%", 100.0 * (optimized / degree - 1.0));

    let overlap = best_seeds.iter().filter(|s| degree_seeds.contains(s)).count();
    println!("  seed overlap      : {overlap}/{k}");
    if optimized > degree {
        println!("  greedy beats degree by skipping hubs whose audiences overlap");
    }
}
