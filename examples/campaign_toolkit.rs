//! The extension toolkit in one campaign-planning session: adaptive
//! stopping (OPIM-C), budgeted seeding, seed minimization, and targeting —
//! the applications the paper's conclusion says its building blocks
//! accelerate.
//!
//! Run with: `cargo run --release --example campaign_toolkit`

use dim::prelude::*;

fn main() {
    let graph = DatasetProfile::Facebook.generate(0.5, 33);
    let stats = GraphStats::compute(&graph);
    println!("network: {stats}\n");
    let machines = 8;
    let net = NetworkModel::shared_memory();
    let ic = SamplerKind::Standard(DiffusionModel::IndependentCascade);

    // 1. Adaptive stopping: OPIM-C certifies the guarantee online and
    //    often needs far fewer samples than IMM's worst-case budget.
    let config = ImConfig {
        k: 10,
        ..ImConfig::paper_defaults(&graph, 0.2, 7)
    };
    let imm_r = imm(&graph, &config);
    let opim_r =
        dopim_c(&graph, &config, machines, net, ExecMode::Sequential).expect("well-formed wire");
    println!("IMM    : {:>7} RR sets, spread ≈ {:.0}", imm_r.num_rr_sets, imm_r.est_spread);
    println!(
        "OPIM-C : {:>7} RR sets, spread ≈ {:.0}  ({:.1}x fewer samples, same guarantee)",
        opim_r.num_rr_sets,
        opim_r.est_spread,
        imm_r.num_rr_sets as f64 / opim_r.num_rr_sets as f64
    );

    // 2. Budgeted seeding: celebrity endorsements cost more. Charge each
    //    user 1 + degree/50 "credits" and spend a budget of 15.
    let costs: Vec<f64> = graph
        .nodes()
        .map(|u| 1.0 + graph.out_degree(u) as f64 / 50.0)
        .collect();
    let budget = 15.0;
    let b = budgeted_im(
        &graph, ic, &costs, budget, 50_000, 7, machines, net, ExecMode::Sequential,
    )
    .expect("well-formed wire");
    println!(
        "\nbudgeted ({budget} credits): {} seeds, spent {:.1}, spread ≈ {:.0}",
        b.seeds.len(),
        b.spent,
        b.est_spread
    );

    // 3. Seed minimization: how few seeds reach 30% of the network?
    let sm = seed_minimization(
        &graph, ic, 0.30, 50_000, 7, machines, net, ExecMode::Sequential,
    )
    .expect("well-formed wire");
    println!(
        "seed minimization: {} seeds reach {:.0} users (target {:.0})",
        sm.seeds.len(),
        sm.est_spread,
        sm.target_spread
    );

    // 4. Targeting: only users 0..200 matter (say, a regional launch).
    let targets: Vec<u32> = (0..200).collect();
    let t = targeted_im(
        &graph, ic, &targets, 5, 50_000, 7, machines, net, ExecMode::Sequential,
    )
    .expect("well-formed wire");
    println!(
        "targeted (|T| = {}): seeds {:?} reach ≈ {:.0} targets",
        targets.len(),
        t.seeds,
        t.est_targeted_spread
    );
}
