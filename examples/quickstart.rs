//! Quickstart: find influential users in a synthetic social network.
//!
//! Run with: `cargo run --release --example quickstart`

use dim::prelude::*;

fn main() {
    // 1. Build a workload: a Facebook-like friendship graph at 50% scale
    //    with the paper's weighted-cascade probabilities p(u,v) = 1/indeg(v).
    let graph = DatasetProfile::Facebook.generate(0.5, 42);
    let stats = GraphStats::compute(&graph);
    println!("graph: {stats}");

    // 2. Configure the run: k seeds, approximation error ε, failure
    //    probability δ = 1/n, independent cascade model.
    let config = ImConfig {
        k: 10,
        ..ImConfig::paper_defaults(&graph, 0.3, 7)
    };

    // 3. Run DiIMM on 4 simulated machines connected by 1 Gbps Ethernet.
    let result = diimm(
        &graph,
        &config,
        4,
        NetworkModel::cluster_1gbps(),
        ExecMode::Sequential,
    )
    .expect("simulated cluster messages are well-formed");

    println!("\nselected seeds ({}):", result.seeds.len());
    for (rank, &s) in result.seeds.iter().enumerate() {
        println!("  #{:<2} node {:>6} (out-degree {})", rank + 1, s, graph.out_degree(s));
    }
    println!("\nRR sets generated : {}", result.num_rr_sets);
    println!("total RR size     : {}", result.total_rr_size);
    println!("estimated spread  : {:.1} nodes (RIS estimate)", result.est_spread);

    // 4. Validate with independent forward Monte-Carlo simulation.
    let mc = estimate_spread(
        &graph,
        DiffusionModel::IndependentCascade,
        &result.seeds,
        10_000,
        999,
    );
    println!("simulated spread  : {mc:.1} nodes (10k cascades)");

    println!(
        "\nvirtual time: sampling {:.3}s + selection {:.3}s + comm {:.3}s = {:.3}s",
        result.timings.sampling.as_secs_f64(),
        result.timings.selection.as_secs_f64(),
        result.timings.communication.as_secs_f64(),
        result.timings.total().as_secs_f64(),
    );
    println!(
        "traffic: {} B to master, {} B from master over {} messages",
        result.metrics.bytes_to_master, result.metrics.bytes_from_master, result.metrics.messages,
    );
}
