//! IC vs LT vs SUBSIM on the same network.
//!
//! Influence maximization answers depend on the diffusion model: IC treats
//! every edge as an independent coin, LT accumulates peer pressure against
//! a threshold. This example finds seeds under both models (plus the
//! SUBSIM fast sampler for IC) and cross-evaluates the seed sets, showing
//! why a campaign planner must pick the model before picking the seeds.
//!
//! Run with: `cargo run --release --example lt_campaign`

use dim::prelude::*;

fn main() {
    let graph = DatasetProfile::Facebook.generate(0.5, 21);
    let stats = GraphStats::compute(&graph);
    println!("network: {stats}\n");

    let k = 10;
    let base = ImConfig {
        k,
        ..ImConfig::paper_defaults(&graph, 0.3, 9)
    };

    let runs = [
        ("IC  (reverse BFS)", SamplerKind::Standard(DiffusionModel::IndependentCascade)),
        ("LT  (reverse walk)", SamplerKind::Standard(DiffusionModel::LinearThreshold)),
        ("IC  (SUBSIM jumps)", SamplerKind::Subsim),
    ];

    let mut seed_sets = Vec::new();
    println!(
        "{:<20} {:>10} {:>12} {:>14} {:>12}",
        "sampler", "RR sets", "Σ|R|", "edges examined", "est. spread"
    );
    for (label, sampler) in runs {
        let config = ImConfig { sampler, ..base };
        let r = imm(&graph, &config);
        println!(
            "{label:<20} {:>10} {:>12} {:>14} {:>12.1}",
            r.num_rr_sets, r.total_rr_size, r.edges_examined, r.est_spread
        );
        seed_sets.push((label, r.seeds));
    }

    // Cross-evaluation: how does each seed set perform under each model?
    println!("\ncross-evaluation (10k Monte-Carlo cascades):");
    println!("{:<22} {:>12} {:>12}", "seeds \\ evaluated under", "IC", "LT");
    for (label, seeds) in &seed_sets {
        let ic = estimate_spread(&graph, DiffusionModel::IndependentCascade, seeds, 10_000, 5);
        let lt = estimate_spread(&graph, DiffusionModel::LinearThreshold, seeds, 10_000, 5);
        println!("{label:<22} {ic:>12.1} {lt:>12.1}");
    }

    let (_, ic_seeds) = &seed_sets[0];
    let (_, lt_seeds) = &seed_sets[1];
    let overlap = ic_seeds.iter().filter(|s| lt_seeds.contains(s)).count();
    println!("\nIC/LT seed overlap: {overlap}/{k}");
    let (_, subsim_seeds) = &seed_sets[2];
    let agreement = ic_seeds.iter().filter(|s| subsim_seeds.contains(s)).count();
    println!("IC BFS / SUBSIM seed overlap: {agreement}/{k} (same distribution, different RNG path)");
}
