//! Offline stand-in for `rayon`: the prelude's `par_iter` /
//! `par_iter_mut` run sequentially through a thin adapter that exposes the
//! rayon-shaped combinators this workspace uses (`map`, `enumerate`,
//! `sum`, `collect`, `reduce(identity, op)`). Results are identical to
//! rayon's for the deterministic merges used here.
//! See tools/offline-check/README.md.

pub mod prelude {
    /// Sequential adapter standing in for rayon's parallel iterators.
    pub struct Par<I>(I);

    impl<I: Iterator> Par<I> {
        pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    pub trait IntoParallelRefIterator<T> {
        fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    }

    impl<T: Sync> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
            Par(self.iter())
        }
    }

    pub trait IntoParallelRefMutIterator<T> {
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    }

    impl<T: Send> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
            Par(self.iter_mut())
        }
    }
}
