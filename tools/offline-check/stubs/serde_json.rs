//! Offline stub of `serde_json`: `to_string` typechecks against the stub
//! `serde::Serialize` bound and returns a placeholder — the offline
//! harness only compiles the bench crate, it does not validate JSON
//! output (cargo builds do).

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}
