//! Offline stub of the `serde` facade: just the `Serialize` marker trait
//! and the derive re-export. Enough to typecheck the bench harness, whose
//! only serde surface is `#[derive(Serialize)]` rows handed to
//! `serde_json::to_string`.

pub use serde_derive::Serialize;

pub trait Serialize {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl Serialize for str {}
impl Serialize for String {}
impl Serialize for bool {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for f64 {}
