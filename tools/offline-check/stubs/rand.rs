//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses (`Rng::gen` / `gen_range`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle`). Deterministic and self-consistent, but NOT
//! the real rand streams — adequate because the repo's tests compare
//! backends against each other rather than against golden random values.
//! See tools/offline-check/README.md.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Maps one raw `u64` draw to a sampled value (stand-in for `Standard`).
pub trait Generate {
    fn generate(raw: u64) -> Self;
}

impl Generate for f32 {
    fn generate(raw: u64) -> f32 {
        ((raw >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Generate for f64 {
    fn generate(raw: u64) -> f64 {
        ((raw >> 11) as f64) / (1u64 << 53) as f64
    }
}

impl Generate for u32 {
    fn generate(raw: u64) -> u32 {
        (raw >> 32) as u32
    }
}

impl Generate for u64 {
    fn generate(raw: u64) -> u64 {
        raw
    }
}

impl Generate for bool {
    fn generate(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Uniform sampling from a half-open range (stand-in for `SampleRange`).
pub trait UniformRange: Sized {
    fn pick(raw: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn pick(raw: u64, range: std::ops::Range<Self>) -> Self {
                let span = (range.end - range.start) as u64;
                assert!(span > 0, "cannot sample from an empty range");
                range.start + (raw % span) as $t
            }
        }
    )*};
}

impl_uniform_range!(usize, u32, u64);

pub trait Rng: RngCore {
    fn gen<T: Generate>(&mut self) -> T {
        T::generate(self.next_u64())
    }

    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::pick(self.next_u64(), range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, like the real implementation.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}
