//! Offline stand-in for the `bytes` crate: fully functional for the
//! surface `dim-cluster::wire` uses (`BytesMut::with_capacity` /
//! `put_u32_le` / `freeze`, `Buf::get_u32_le` on `&[u8]`, and `Bytes` as a
//! cheap byte container). See tools/offline-check/README.md.

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let (&b, rest) = self.split_first().expect("buffer underflow");
        *self = rest;
        b
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}
