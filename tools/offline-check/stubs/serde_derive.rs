//! Minimal `#[derive(Serialize)]` stub for the offline harness: emits an
//! empty `impl serde::Serialize` for the annotated type so bounds check.
//! No actual serialization logic — pair with the `serde`/`serde_json`
//! stubs, whose `to_string` returns a placeholder.

extern crate proc_macro;

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter();
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize) on a named struct/enum");
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
