//! Offline stand-in for `rand_pcg::Pcg64`: a deterministic 64-bit
//! splitmix/xorshift generator exposing the same constructor surface.
//! Not the PCG-XSL-RR stream; see tools/offline-check/README.md.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct Pcg64 {
    state: u64,
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        // splitmix64: full-period, passes basic avalanche — plenty for a
        // typecheck/equivalence harness.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(state: u64) -> Self {
        Pcg64 { state }
    }
}
