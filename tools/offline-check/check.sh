#!/bin/sh
# Offline typecheck + test harness for environments where cargo cannot
# reach a registry (this container has no network and no vendored crates).
#
# Compiles the workspace crates in dependency order with plain rustc
# against the functional stub crates in tools/offline-check/stubs/ (rand,
# rand_pcg, bytes, rayon — the only external deps the lib/bin/test sources
# use), builds the real `dim` and `dim-worker` binaries, builds every unit-
# and integration-test binary (except the proptest suites, which need the
# real proptest crate), and runs them.
#
# The stub RNG is NOT the real rand/PCG stream, so absolute numbers differ
# from a cargo build; every test this harness runs is stream-relative
# (backend A == backend B), which is exactly what makes it a meaningful
# offline gate. See README.md in this directory.
#
# Usage: tools/offline-check/check.sh [--build-only] [test-name-filter]
set -eu

cd "$(dirname "$0")/../.."
ROOT="$PWD"
# OPT="-O" builds optimized artifacts into a separate target directory —
# what the bench-recording workflow (dim-benchrec) uses offline.
OPT="${OPT:-}"
OUT="$ROOT/target/offline-check${OPT:+-opt}"
mkdir -p "$OUT"
RUSTC="${RUSTC:-rustc}"
FLAGS="--edition 2021 $OPT -L dependency=$OUT"
FEAT='--cfg feature="proc-backend" --cfg feature="chaos"'

BUILD_ONLY=0
FILTER=""
for arg in "$@"; do
    case "$arg" in
        --build-only) BUILD_ONLY=1 ;;
        *) FILTER="$arg" ;;
    esac
done

say() { printf '\033[1m== %s\033[0m\n' "$*"; }

rlib() { # rlib <crate_name> <src> [extra flags...]
    name="$1"; src="$2"; shift 2
    say "rlib $name"
    # shellcheck disable=SC2086
    $RUSTC $FLAGS --crate-type rlib --crate-name "$name" "$src" \
        -o "$OUT/lib$name.rlib" "$@"
}

say "stubs (rand, rand_pcg, bytes, rayon, serde, serde_json)"
$RUSTC $FLAGS --crate-type rlib --crate-name rand \
    tools/offline-check/stubs/rand.rs -o "$OUT/librand.rlib"
$RUSTC $FLAGS --crate-type rlib --crate-name rand_pcg \
    tools/offline-check/stubs/rand_pcg.rs \
    --extern rand="$OUT/librand.rlib" -o "$OUT/librand_pcg.rlib"
$RUSTC $FLAGS --crate-type rlib --crate-name bytes \
    tools/offline-check/stubs/bytes.rs -o "$OUT/libbytes.rlib"
$RUSTC $FLAGS --crate-type rlib --crate-name rayon \
    tools/offline-check/stubs/rayon.rs -o "$OUT/librayon.rlib"
$RUSTC --edition 2021 --crate-type proc-macro --crate-name serde_derive \
    tools/offline-check/stubs/serde_derive.rs -o "$OUT/libserde_derive.so"
$RUSTC $FLAGS --crate-type rlib --crate-name serde \
    tools/offline-check/stubs/serde.rs \
    --extern serde_derive="$OUT/libserde_derive.so" -o "$OUT/libserde.rlib"
$RUSTC $FLAGS --crate-type rlib --crate-name serde_json \
    tools/offline-check/stubs/serde_json.rs \
    --extern serde="$OUT/libserde.rlib" -o "$OUT/libserde_json.rlib"

RAND="--extern rand=$OUT/librand.rlib --extern rand_pcg=$OUT/librand_pcg.rlib"

rlib dim_graph crates/graph/src/lib.rs $RAND
rlib dim_diffusion crates/diffusion/src/lib.rs $RAND \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern rayon="$OUT/librayon.rlib"
# shellcheck disable=SC2086
say "rlib dim_cluster (proc-backend)"
$RUSTC $FLAGS $FEAT --crate-type rlib --crate-name dim_cluster \
    crates/cluster/src/lib.rs -o "$OUT/libdim_cluster.rlib" \
    --extern bytes="$OUT/libbytes.rlib" --extern rayon="$OUT/librayon.rlib"
rlib dim_coverage crates/coverage/src/lib.rs $RAND \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib"
rlib dim_store crates/store/src/lib.rs \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib" \
    --extern dim_coverage="$OUT/libdim_coverage.rlib"
rlib dim_serve crates/serve/src/lib.rs \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib" \
    --extern dim_coverage="$OUT/libdim_coverage.rlib" \
    --extern dim_store="$OUT/libdim_store.rlib"
rlib dim_core crates/core/src/lib.rs $RAND \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_diffusion="$OUT/libdim_diffusion.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib" \
    --extern dim_coverage="$OUT/libdim_coverage.rlib" \
    --extern dim_store="$OUT/libdim_store.rlib" \
    --extern rayon="$OUT/librayon.rlib"

DIM_DEPS="--extern dim_graph=$OUT/libdim_graph.rlib \
 --extern dim_diffusion=$OUT/libdim_diffusion.rlib \
 --extern dim_cluster=$OUT/libdim_cluster.rlib \
 --extern dim_coverage=$OUT/libdim_coverage.rlib \
 --extern dim_store=$OUT/libdim_store.rlib \
 --extern dim_serve=$OUT/libdim_serve.rlib \
 --extern dim_core=$OUT/libdim_core.rlib"

say "rlib dim (facade, proc-backend)"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-type rlib --crate-name dim src/lib.rs \
    -o "$OUT/libdim.rlib" $DIM_DEPS $RAND

say "rlib dim_bench (proc-backend, no criterion benches)"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-type rlib --crate-name dim_bench \
    crates/bench/src/lib.rs -o "$OUT/libdim_bench.rlib" $DIM_DEPS $RAND \
    --extern serde="$OUT/libserde.rlib" \
    --extern serde_json="$OUT/libserde_json.rlib" \
    --extern serde_derive="$OUT/libserde_derive.so"
say "bin repro"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-name repro crates/bench/src/bin/repro.rs \
    -o "$OUT/repro" --extern dim_bench="$OUT/libdim_bench.rlib" $DIM_DEPS $RAND \
    --extern serde="$OUT/libserde.rlib" \
    --extern serde_json="$OUT/libserde_json.rlib"

say "bin dim-loadgen"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-name dim_loadgen crates/bench/src/bin/loadgen.rs \
    -o "$OUT/dim-loadgen" --extern dim_bench="$OUT/libdim_bench.rlib" \
    $DIM_DEPS $RAND
say "bin dim-benchrec"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-name dim_benchrec crates/bench/src/bin/benchrec.rs \
    -o "$OUT/dim-benchrec" --extern dim_bench="$OUT/libdim_bench.rlib" \
    $DIM_DEPS $RAND

say "bin dim"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-name dim src/bin/dim.rs -o "$OUT/dim" \
    --extern dim="$OUT/libdim.rlib" $DIM_DEPS $RAND
say "bin dim-worker"
# shellcheck disable=SC2086
$RUSTC $FLAGS $FEAT --crate-name dim_worker src/bin/dim_worker.rs \
    -o "$OUT/dim-worker" --extern dim="$OUT/libdim.rlib" $DIM_DEPS $RAND

unit_test() { # unit_test <crate_name> <src> [extra externs...]
    name="$1"; src="$2"; shift 2
    say "unit tests: $name"
    # shellcheck disable=SC2086
    $RUSTC $FLAGS $FEAT --test --crate-name "${name}_unit" "$src" \
        -o "$OUT/${name}_unit" "$@"
}

unit_test dim_graph crates/graph/src/lib.rs $RAND
unit_test dim_diffusion crates/diffusion/src/lib.rs $RAND \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern rayon="$OUT/librayon.rlib"
unit_test dim_cluster crates/cluster/src/lib.rs \
    --extern bytes="$OUT/libbytes.rlib" --extern rayon="$OUT/librayon.rlib"
unit_test dim_coverage crates/coverage/src/lib.rs $RAND \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib"
unit_test dim_store crates/store/src/lib.rs \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib" \
    --extern dim_coverage="$OUT/libdim_coverage.rlib"
unit_test dim_serve crates/serve/src/lib.rs \
    --extern dim_graph="$OUT/libdim_graph.rlib" \
    --extern dim_cluster="$OUT/libdim_cluster.rlib" \
    --extern dim_coverage="$OUT/libdim_coverage.rlib" \
    --extern dim_store="$OUT/libdim_store.rlib"
# shellcheck disable=SC2086
unit_test dim_core crates/core/src/lib.rs $RAND $DIM_DEPS \
    --extern rayon="$OUT/librayon.rlib"
# shellcheck disable=SC2086
unit_test dim_bench crates/bench/src/lib.rs $RAND $DIM_DEPS \
    --extern serde="$OUT/libserde.rlib" \
    --extern serde_json="$OUT/libserde_json.rlib" \
    --extern serde_derive="$OUT/libserde_derive.so"

itest() { # itest <name> <src>
    name="$1"; src="$2"
    say "integration test: $name"
    # shellcheck disable=SC2086
    env "CARGO_BIN_EXE_dim=$OUT/dim" "CARGO_BIN_EXE_dim-worker=$OUT/dim-worker" \
        "$RUSTC" $FLAGS $FEAT --test --crate-name "$name" "$src" \
        -o "$OUT/$name" --extern dim="$OUT/libdim.rlib" $DIM_DEPS $RAND
}

itest alloc_regression tests/alloc_regression.rs
itest backend_equivalence tests/backend_equivalence.rs
itest distributed_equivalence tests/distributed_equivalence.rs
itest end_to_end tests/end_to_end.rs
itest concentration tests/concentration.rs
itest cli tests/cli.rs
itest proc_backend tests/proc_backend.rs
itest serve tests/serve.rs

[ "$BUILD_ONLY" = 1 ] && { say "build OK (tests not run)"; exit 0; }

FAILED=0
for t in dim_graph_unit dim_diffusion_unit dim_cluster_unit dim_coverage_unit \
         dim_store_unit dim_serve_unit dim_core_unit dim_bench_unit \
         alloc_regression backend_equivalence distributed_equivalence \
         end_to_end concentration cli proc_backend serve; do
    say "run $t"
    # incremental_reporting_preserves_output asserts a *strict* traffic
    # decrease, which depends on the real RNG stream's RR-set shapes; under
    # the stub RNG the decrease can be zero. dump_appends_lines asserts the
    # serialized JSON content, which the stub serde_json (placeholder
    # to_string) cannot produce. Both covered by cargo runs only.
    if ! DIM_WORKER_BIN="$OUT/dim-worker" "$OUT/$t" --test-threads 4 \
        --skip incremental_reporting_preserves_output \
        --skip dump_appends_lines $FILTER; then
        FAILED=1
    fi
done
# End-to-end edge-stream smoke over the CLI (debug-speed sizes): sample a
# generation store, apply a JSONL edit log (delta generations, compaction,
# re-select), then run the bench recorder's regression gate against a
# baseline that predates the stream_apply phase — the new key must be
# reported as skipped, never fail the gate.
say "smoke: dim stream + dim-benchrec --check"
SMOKE="$OUT/stream-smoke"
rm -rf "$SMOKE"; mkdir -p "$SMOKE"
"$OUT/dim" generate --profile facebook:0.05 --out "$SMOKE/edges.txt"
"$OUT/dim" sample --graph "$SMOKE/edges.txt" --k 5 --seed 7 --machines 2 \
    --out "$SMOKE/store" --generations
printf '%s\n' '{"op":"insert","u":1,"v":5,"p":0.1}' \
    '{"op":"delete","u":0,"v":1}' > "$SMOKE/edits.jsonl"
"$OUT/dim" stream --graph "$SMOKE/edges.txt" --k 5 --seed 7 --machines 2 \
    --store "$SMOKE/store" --apply "$SMOKE/edits.jsonl" --compact --select
printf '%s\n' \
    '{"bench":"sample_select","label":"pre-stream","provenance":"offline-stub","graph":"facebook:0.05","num_nodes":202,"theta":2000,"shards":4,"k":50,"batch":64,"sample_build_ms":99999.0,"select_top_k_ms":99999.0,"spread_batch_ms":99999.0}' \
    > "$SMOKE/baseline.json"
"$OUT/dim-benchrec" --graph facebook --scale 0.05 --theta 2000 --iters 1 \
    --provenance offline-stub --check "$SMOKE/baseline.json" \
    --out "$SMOKE/bench.json" > "$SMOKE/check.out"
grep -q 'stream_apply_ms: not recorded in baseline entry, skipped' "$SMOKE/check.out"
grep -q '"stream_apply_ms"' "$SMOKE/bench.json"
grep -q 'fault_recover_ms: not recorded in baseline entry, skipped' "$SMOKE/check.out"
grep -q '"fault_recover_ms"' "$SMOKE/bench.json"

# Chaos smoke: replay a kill plan against the sim and proc backends and
# require a byte-identical Degraded completion (ℓ = 2 needs the explicit
# --min-survivors 1 opt-in: a strict majority cannot survive one loss).
say "smoke: dim chaos --plan (sim + proc)"
printf '%s\n' \
    '{"chaos_seed": 7, "link_faults": [{"machine": 1, "kill_at_round": 2}], "partitions": []}' \
    > "$SMOKE/kill.json"
"$OUT/dim" chaos --graph profile:facebook:0.1 --k 5 --seed 11 --machines 4 \
    --plan "$SMOKE/kill.json" > "$SMOKE/chaos-sim.out"
grep -q 'byte-identical' "$SMOKE/chaos-sim.out"
"$OUT/dim" chaos --graph profile:facebook:0.1 --k 5 --seed 11 --machines 2 \
    --min-survivors 1 --plan "$SMOKE/kill.json" > "$SMOKE/chaos-sim2.out"
grep -q 'byte-identical' "$SMOKE/chaos-sim2.out"
DIM_WORKER_BIN="$OUT/dim-worker" \
    "$OUT/dim" chaos --graph profile:facebook:0.1 --k 5 --seed 11 --machines 4 \
    --backend proc --plan "$SMOKE/kill.json" > "$SMOKE/chaos-proc.out"
grep -q 'byte-identical' "$SMOKE/chaos-proc.out"

# Multi-tenant smoke: one daemon, two tenants over the same store. Authed
# queries per tenant succeed and land on the right ledger, a wrong token
# and an unknown tenant are refused without killing the daemon, and the
# shutdown report carries one accounting row per tenant.
say "smoke: dim serve --tenants + authed dim query"
TEN="$OUT/tenant-smoke"
rm -rf "$TEN"; mkdir -p "$TEN"
"$OUT/dim" sample --graph "$SMOKE/edges.txt" --k 5 --seed 7 --machines 2 \
    --out "$TEN/store" --generations
cat > "$TEN/TENANTS.json" <<'EOF'
{
  "tenants": [
    {"id": "tenant-0", "token": "tenant-0-token"},
    {"id": "tenant-1", "token": "tenant-1-token", "max_batch": 8}
  ]
}
EOF
"$OUT/dim" serve --graph "$SMOKE/edges.txt" --k 5 --seed 7 --machines 2 \
    --store "$TEN/store" --tenants "$TEN/TENANTS.json" --addr 127.0.0.1:7913 \
    --max-queries 3 > "$TEN/serve.out" &
SERVE=$!
"$OUT/dim" query --addr 127.0.0.1:7913 --timeout 10 \
    --tenant tenant-0 --token tenant-0-token --stats > "$TEN/q-stats.out"
grep -q 'quota-shed' "$TEN/q-stats.out"
if "$OUT/dim" query --addr 127.0.0.1:7913 --tenant tenant-0 --token wrong \
    --stats > /dev/null 2>&1; then
    echo "wrong token was accepted"; exit 1
fi
if "$OUT/dim" query --addr 127.0.0.1:7913 --tenant nobody --token x \
    --stats > /dev/null 2>&1; then
    echo "unknown tenant was accepted"; exit 1
fi
"$OUT/dim" query --addr 127.0.0.1:7913 --tenant tenant-1 --token tenant-1-token \
    --seeds 0,1 > /dev/null
"$OUT/dim" query --addr 127.0.0.1:7913 --tenant tenant-0 --token tenant-0-token \
    --seeds 2 > /dev/null
wait "$SERVE"
grep -q 'tenant "tenant-0": generation 1, 2 queries' "$TEN/serve.out"
grep -q 'tenant "tenant-1": generation 1, 1 queries' "$TEN/serve.out"

[ "$FAILED" = 0 ] && say "offline check PASSED" || { say "offline check FAILED"; exit 1; }
