//! Process-level tests for the TCP backend: spawn real `dim-worker` OS
//! processes, install resident state through setup ops, run phase ops
//! against it, and verify (a) the replies match an in-process shard, (b)
//! real transfer times are measured, and (c) dropping the cluster shuts
//! every worker process down — no orphans. Skips gracefully (with a note)
//! where the worker binary is missing or process spawning is unavailable —
//! e.g. minimal sandboxes.
#![cfg(feature = "proc-backend")]

use std::time::Duration;

use dim::prelude::*;
use dim_cluster::ops::{expect_deltas, expect_ok};

fn worker_binary() -> Option<String> {
    std::env::var("DIM_WORKER_BIN")
        .ok()
        .or_else(|| option_env!("CARGO_BIN_EXE_dim-worker").map(String::from))
        .filter(|p| std::path::Path::new(p).exists())
}

fn spawn_cluster(count: usize, seed: u64) -> Option<ProcCluster> {
    let bin = worker_binary().or_else(|| {
        eprintln!("skipping: dim-worker binary not built/locatable");
        None
    })?;
    std::env::set_var("DIM_WORKER_BIN", &bin);
    match ProcCluster::spawn(count, NetworkModel::cluster_1gbps(), seed) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("skipping: cannot spawn worker processes: {e}");
            None
        }
    }
}

/// Fig. 2's instance, split over two machines.
fn shard_records(machine: usize) -> Vec<Vec<u32>> {
    match machine {
        0 => vec![vec![0], vec![1, 2], vec![0, 2]],
        _ => vec![vec![1, 4], vec![0], vec![1, 3]],
    }
}

#[test]
fn spawned_worker_processes_hold_shards_and_answer_ops() {
    let Some(mut cluster) = spawn_cluster(2, 42) else {
        return;
    };
    // State ships to the workers once; nothing is retained master-side.
    let replies = cluster
        .control(phase::SETUP, |i| WorkerOp::BuildShard {
            num_sets: 5,
            elements: shard_records(i),
        })
        .unwrap();
    expect_ok(&replies, phase::SETUP).unwrap();

    // The coverage-upload round returns each machine's real initial
    // coverage, matching an in-process shard over the same records.
    let replies = cluster
        .op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)
        .unwrap();
    let deltas = expect_deltas(replies, phase::COVERAGE_UPLOAD).unwrap();
    for (i, deltas) in deltas.iter().enumerate() {
        let local = CoverageShard::from_records(5, shard_records(i).iter().map(Vec::as_slice));
        assert_eq!(deltas, &local.initial_coverage(), "machine {i}");
    }

    assert_eq!(cluster.link_errors(), 0, "clean run over real processes");
    let m = cluster.metrics();
    assert!(
        m.measured_comm > Duration::ZERO,
        "cross-process transfers must record wall-clock time"
    );
    // Modeled upload traffic is the sparse-delta wire size, per machine.
    let expected: u64 = deltas
        .iter()
        .map(|d| dim_cluster::wire::delta_wire_size(d.len()) as u64)
        .sum();
    assert_eq!(m.bytes_to_master, expected);
}

/// Spawns a pre-started join-mode worker process, as an operator would:
/// `dim-worker --connect ADDR --join --machine-id ID --join-deadline 5`.
fn start_join_worker(
    bin: &str,
    addr: std::net::SocketAddr,
    id: u32,
) -> std::io::Result<std::process::Child> {
    std::process::Command::new(bin)
        .args(["--connect", &addr.to_string(), "--join"])
        .args(["--machine-id", &id.to_string()])
        .args(["--join-deadline", "5"])
        .stdin(std::process::Stdio::null())
        .spawn()
}

fn join_rendezvous(machines: usize) -> dim_cluster::rendezvous::Rendezvous {
    let mut config = dim_cluster::JoinConfig::new(machines);
    config.join_timeout = Duration::from_secs(20);
    config.heartbeat_timeout = Duration::from_secs(2);
    dim_cluster::Rendezvous::bind("127.0.0.1:0", config).expect("bind loopback rendezvous")
}

/// Runs the Fig. 2 coverage workload on an assembled join session and
/// checks the replies against in-process shards.
fn run_coverage_session(cluster: &mut dim_cluster::JoinCluster, session: u64) {
    assert_eq!(cluster.session_id(), session);
    let replies = cluster
        .control(phase::SETUP, |i| WorkerOp::BuildShard {
            num_sets: 5,
            elements: shard_records(i),
        })
        .unwrap();
    expect_ok(&replies, phase::SETUP).unwrap();
    let replies = cluster
        .op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)
        .unwrap();
    let deltas = expect_deltas(replies, phase::COVERAGE_UPLOAD).unwrap();
    for (i, deltas) in deltas.iter().enumerate() {
        let local = CoverageShard::from_records(5, shard_records(i).iter().map(Vec::as_slice));
        assert_eq!(deltas, &local.initial_coverage(), "machine {i}, session {session}");
    }
    cluster.heartbeat().expect("all join workers alive");
    assert_eq!(cluster.link_errors(), 0, "session {session}");
}

/// Pre-started `dim-worker --join` processes register with the master's
/// rendezvous point, serve a session, re-register for the next one (same
/// processes, same resident-state path), and exit 0 on their own once the
/// master is gone.
#[test]
fn join_mode_processes_serve_two_sessions_and_exit_clean() {
    let Some(bin) = worker_binary() else {
        eprintln!("skipping: dim-worker binary not built/locatable");
        return;
    };
    let mut rendezvous = join_rendezvous(2);
    let addr = rendezvous.local_addr().unwrap();
    let mut children = Vec::new();
    for id in 0..2 {
        match start_join_worker(&bin, addr, id) {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("skipping: cannot spawn worker processes: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return;
            }
        }
    }
    for session in 1..=2 {
        let mut cluster = rendezvous
            .accept_session(NetworkModel::cluster_1gbps(), 42)
            .expect("both join workers register in time");
        run_coverage_session(&mut cluster, session);
        // Dropping the cluster ends the session with Shutdown ops; the
        // worker processes survive and re-register with the same master.
    }
    drop(rendezvous);
    // With the rendezvous point gone, each worker's re-join deadline
    // expires against connection-refused and it exits *successfully*.
    for (id, mut child) in children.into_iter().enumerate() {
        let status = child.wait().unwrap();
        assert!(
            status.success(),
            "worker {id} should exit 0 once the master is gone, got {status:?}"
        );
    }
}

/// SIGKILLing a join worker mid-session fail-stops the link with a typed
/// error naming the machine; a freshly started replacement process
/// registers for the *next* session against the same master.
#[test]
fn killed_join_worker_fail_stops_and_a_restart_rejoins() {
    let Some(bin) = worker_binary() else {
        eprintln!("skipping: dim-worker binary not built/locatable");
        return;
    };
    let mut rendezvous = join_rendezvous(2);
    let addr = rendezvous.local_addr().unwrap();
    let mut children = Vec::new();
    for id in 0..2 {
        match start_join_worker(&bin, addr, id) {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("skipping: cannot spawn worker processes: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return;
            }
        }
    }
    let mut cluster = rendezvous
        .accept_session(NetworkModel::cluster_1gbps(), 7)
        .expect("both join workers register in time");
    let replies = cluster
        .control(phase::SETUP, |i| WorkerOp::BuildShard {
            num_sets: 5,
            elements: shard_records(i),
        })
        .unwrap();
    expect_ok(&replies, phase::SETUP).unwrap();

    // Kill machine 1's process outright — the MPI-style fail-stop case.
    children[1].kill().unwrap();
    children[1].wait().unwrap();
    let err = cluster
        .heartbeat()
        .expect_err("dead worker must fail the liveness probe");
    assert_eq!(err.machine, Some(1), "error names the dead machine");
    assert_eq!(err.kind, WireErrorKind::Link);
    assert!(
        err.to_string().contains("machine 1"),
        "fail-stop message names the machine: {err}"
    );
    assert_eq!(cluster.live_links(), 1);
    drop(cluster);

    // An operator restarts the dead worker; the surviving process and the
    // replacement assemble the next session and serve it clean.
    children.push(start_join_worker(&bin, addr, 1).expect("restart worker 1"));
    let mut cluster = rendezvous
        .accept_session(NetworkModel::cluster_1gbps(), 7)
        .expect("survivor + replacement register in time");
    run_coverage_session(&mut cluster, 2);
    drop(cluster);
    drop(rendezvous);
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child.wait().unwrap();
        if i != 1 {
            assert!(status.success(), "worker {i} exits 0, got {status:?}");
        }
    }
}

#[test]
fn dropping_the_cluster_leaves_no_orphan_processes() {
    let Some(cluster) = spawn_cluster(3, 7) else {
        return;
    };
    let pids = cluster.worker_pids();
    assert_eq!(pids.len(), 3, "three real worker processes");
    for &pid in &pids {
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} alive while cluster is up"
        );
    }
    drop(cluster);
    // Drop sends Shutdown ops and reaps each child (kill after a 2 s
    // grace), so by now every pid must be gone from the process table.
    for &pid in &pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "worker process {pid} survived ProcCluster drop"
        );
    }
}
