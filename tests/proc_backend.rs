//! Process-level smoke test for the TCP backend: spawn real `dim-worker`
//! OS processes, run a gather/broadcast round, and verify measured
//! transfer times. Skips gracefully (with a note) where the worker binary
//! is missing or process spawning is unavailable — e.g. minimal sandboxes.
#![cfg(feature = "proc-backend")]

use std::time::Duration;

use dim::prelude::*;

fn worker_binary() -> Option<String> {
    std::env::var("DIM_WORKER_BIN")
        .ok()
        .or_else(|| option_env!("CARGO_BIN_EXE_dim-worker").map(String::from))
        .filter(|p| std::path::Path::new(p).exists())
}

#[test]
fn spawned_worker_processes_serve_a_cluster() {
    let Some(bin) = worker_binary() else {
        eprintln!("skipping: dim-worker binary not built/locatable");
        return;
    };
    std::env::set_var("DIM_WORKER_BIN", &bin);
    let mut cluster =
        match ProcCluster::spawn(vec![7u64, 11], NetworkModel::cluster_1gbps(), 42) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("skipping: cannot spawn worker processes: {e}");
                return;
            }
        };
    let got = cluster.gather(phase::COUNT_UPLOAD, |_, w| *w, |_| 4096);
    assert_eq!(got, vec![7, 11], "worker state lives master-side");
    cluster.broadcast(phase::SEED_BROADCAST, 4096);
    assert_eq!(cluster.link_errors(), 0, "clean run over real processes");
    let m = cluster.metrics();
    assert!(
        m.measured_comm > Duration::ZERO,
        "cross-process transfers must record wall-clock time"
    );
    assert_eq!(m.bytes_to_master, 4096 * 2);
    assert_eq!(m.bytes_from_master, 4096 * 2, "broadcast charges per machine");
}
