//! Process-level tests for the TCP backend: spawn real `dim-worker` OS
//! processes, install resident state through setup ops, run phase ops
//! against it, and verify (a) the replies match an in-process shard, (b)
//! real transfer times are measured, and (c) dropping the cluster shuts
//! every worker process down — no orphans. Skips gracefully (with a note)
//! where the worker binary is missing or process spawning is unavailable —
//! e.g. minimal sandboxes.
#![cfg(feature = "proc-backend")]

use std::time::Duration;

use dim::prelude::*;
use dim_cluster::ops::{expect_deltas, expect_ok};

fn worker_binary() -> Option<String> {
    std::env::var("DIM_WORKER_BIN")
        .ok()
        .or_else(|| option_env!("CARGO_BIN_EXE_dim-worker").map(String::from))
        .filter(|p| std::path::Path::new(p).exists())
}

fn spawn_cluster(count: usize, seed: u64) -> Option<ProcCluster> {
    let bin = worker_binary().or_else(|| {
        eprintln!("skipping: dim-worker binary not built/locatable");
        None
    })?;
    std::env::set_var("DIM_WORKER_BIN", &bin);
    match ProcCluster::spawn(count, NetworkModel::cluster_1gbps(), seed) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("skipping: cannot spawn worker processes: {e}");
            None
        }
    }
}

/// Fig. 2's instance, split over two machines.
fn shard_records(machine: usize) -> Vec<Vec<u32>> {
    match machine {
        0 => vec![vec![0], vec![1, 2], vec![0, 2]],
        _ => vec![vec![1, 4], vec![0], vec![1, 3]],
    }
}

#[test]
fn spawned_worker_processes_hold_shards_and_answer_ops() {
    let Some(mut cluster) = spawn_cluster(2, 42) else {
        return;
    };
    // State ships to the workers once; nothing is retained master-side.
    let replies = cluster
        .control(phase::SETUP, |i| WorkerOp::BuildShard {
            num_sets: 5,
            elements: shard_records(i),
        })
        .unwrap();
    expect_ok(&replies, phase::SETUP).unwrap();

    // The coverage-upload round returns each machine's real initial
    // coverage, matching an in-process shard over the same records.
    let replies = cluster
        .op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)
        .unwrap();
    let deltas = expect_deltas(replies, phase::COVERAGE_UPLOAD).unwrap();
    for (i, deltas) in deltas.iter().enumerate() {
        let local = CoverageShard::from_records(5, shard_records(i).iter().map(Vec::as_slice));
        assert_eq!(deltas, &local.initial_coverage(), "machine {i}");
    }

    assert_eq!(cluster.link_errors(), 0, "clean run over real processes");
    let m = cluster.metrics();
    assert!(
        m.measured_comm > Duration::ZERO,
        "cross-process transfers must record wall-clock time"
    );
    // Modeled upload traffic is the sparse-delta wire size, per machine.
    let expected: u64 = deltas
        .iter()
        .map(|d| dim_cluster::wire::delta_wire_size(d.len()) as u64)
        .sum();
    assert_eq!(m.bytes_to_master, expected);
}

#[test]
fn dropping_the_cluster_leaves_no_orphan_processes() {
    let Some(cluster) = spawn_cluster(3, 7) else {
        return;
    };
    let pids = cluster.worker_pids();
    assert_eq!(pids.len(), 3, "three real worker processes");
    for &pid in &pids {
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} alive while cluster is up"
        );
    }
    drop(cluster);
    // Drop sends Shutdown ops and reaps each child (kill after a 2 s
    // grace), so by now every pid must be gone from the process table.
    for &pid in &pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "worker process {pid} survived ProcCluster drop"
        );
    }
}
