//! Backend-equivalence tests: every [`ExecMode`] of the simulated cluster
//! must be an *execution strategy*, never an *algorithm change*. DiIMM and
//! NewGreeDi depend only on the per-machine RNG streams (seeded by
//! `stream_seed(master, machine_id)`), so the deterministic sequential
//! loop, the capped OS-thread pool, and the rayon pool must return the
//! same answer bit for bit, at every machine count.

use dim::prelude::*;

const MACHINE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MODES: [ExecMode; 3] = [ExecMode::Sequential, ExecMode::Threads, ExecMode::Rayon];

/// DiIMM: seeds, coverage, θ, RR-set mass, and the accounted traffic are
/// identical whichever backend executes the phases.
#[test]
fn diimm_identical_across_backends() {
    let g = DatasetProfile::Facebook.generate(0.1, 11);
    let config = ImConfig {
        k: 6,
        ..ImConfig::paper_defaults(&g, 0.4, 29)
    };
    for machines in MACHINE_COUNTS {
        let reference = diimm(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(reference.seeds.len(), 6);
        for mode in [ExecMode::Threads, ExecMode::Rayon] {
            let r = diimm(&g, &config, machines, NetworkModel::cluster_1gbps(), mode).unwrap();
            assert_eq!(r.seeds, reference.seeds, "ℓ = {machines}, {mode:?}");
            assert_eq!(r.coverage, reference.coverage, "ℓ = {machines}, {mode:?}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "ℓ = {machines}, {mode:?}");
            assert_eq!(
                r.total_rr_size, reference.total_rr_size,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.edges_examined, reference.edges_examined,
                "ℓ = {machines}, {mode:?}"
            );
            // Traffic is a function of the message contents, not of the
            // execution strategy.
            assert_eq!(
                r.metrics.bytes_to_master, reference.metrics.bytes_to_master,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.metrics.bytes_from_master, reference.metrics.bytes_from_master,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.metrics.messages, reference.metrics.messages,
                "ℓ = {machines}, {mode:?}"
            );
            // Same phases in the same order, label for label.
            assert_eq!(
                r.timeline.labels().collect::<Vec<_>>(),
                reference.timeline.labels().collect::<Vec<_>>(),
                "ℓ = {machines}, {mode:?}"
            );
        }
    }
}

/// The SUBSIM sampler — including its degree-based geometric-jump cutover,
/// which routes high-in-degree nodes through the jump path and everything
/// else through per-edge coins — is held to the same contract: the cutover
/// is a per-node *speed* decision inside one machine's sampler, so seeds,
/// marginals, and RR-set mass must be byte-identical across every backend
/// and machine count.
#[test]
fn diimm_subsim_cutover_identical_across_backends() {
    let g = DatasetProfile::Facebook.generate(0.1, 11);
    let config = ImConfig {
        k: 6,
        sampler: SamplerKind::Subsim,
        ..ImConfig::paper_defaults(&g, 0.4, 29)
    };
    for machines in MACHINE_COUNTS {
        let reference = diimm(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(reference.seeds.len(), 6);
        for mode in [ExecMode::Threads, ExecMode::Rayon] {
            let r = diimm(&g, &config, machines, NetworkModel::cluster_1gbps(), mode).unwrap();
            let ctx = format!("ℓ = {machines}, {mode:?}");
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
        }
    }
}

/// NewGreeDi: the full result — seeds, coverage, *and per-seed marginals* —
/// is identical across backends for every sharding.
#[test]
fn newgreedi_identical_across_backends() {
    let g = DatasetProfile::Facebook.generate(0.15, 3);
    let problem = CoverageProblem::from_graph_neighborhoods(&g);
    let k = 12;
    for machines in MACHINE_COUNTS {
        let results: Vec<_> = MODES
            .iter()
            .map(|&mode| {
                let mut cluster = SimCluster::new(
                    problem.shard_elements(machines),
                    NetworkModel::cluster_1gbps(),
                    mode,
                );
                let r = newgreedi(&mut cluster, k).unwrap();
                (r, cluster.metrics())
            })
            .collect();
        let (reference, ref_metrics) = &results[0];
        assert_eq!(reference.seeds.len(), k);
        for ((r, m), &mode) in results.iter().zip(MODES.iter()).skip(1) {
            assert_eq!(r, reference, "ℓ = {machines}, {mode:?}");
            assert_eq!(
                r.marginals, reference.marginals,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(m.bytes_to_master, ref_metrics.bytes_to_master);
            assert_eq!(m.bytes_from_master, ref_metrics.bytes_from_master);
            assert_eq!(m.messages, ref_metrics.messages);
        }
    }
}

/// Persisted sketches are an execution path of their own: `diimm_sample`
/// (run + persist every machine's shard) followed by `diimm_load_rr`
/// (restore + reselect, no sampling) must reproduce the direct run bit
/// for bit — seeds, marginals, coverage, θ — at every machine count, and
/// the restored selection must itself be mode-independent.
#[test]
fn snapshot_roundtrip_matches_direct_run() {
    let g = DatasetProfile::Facebook.generate(0.1, 11);
    let config = ImConfig {
        k: 6,
        ..ImConfig::paper_defaults(&g, 0.4, 29)
    };
    for machines in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!(
            "dim-equiv-snapshot-{}-{machines}",
            std::process::id()
        ));
        let reference = diimm(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        let sampled = diimm_sample(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
            &dir,
        )
        .unwrap();
        assert_eq!(sampled.seeds, reference.seeds, "ℓ = {machines}");
        assert_eq!(sampled.marginals, reference.marginals, "ℓ = {machines}");
        for mode in MODES {
            let r = diimm_load_rr(&g, &config, &dir, NetworkModel::cluster_1gbps(), mode)
                .unwrap();
            let ctx = format!("ℓ = {machines}, {mode:?}");
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
            assert_eq!(r.est_spread, reference.est_spread, "{ctx}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Edge-stream repair is an execution path, never an algorithm change:
/// applying a delta batch and repairing only the touched RR sets must be
/// byte-identical — seeds *and* marginals — to throwing the sketch away
/// and re-sampling the mutated graph from scratch with the same per-set
/// RNG streams, at every machine count, on the simulated and the process
/// backend alike.
mod stream {
    use super::*;
    use dim_core::diimm::DiimmWorker;

    const STREAM_MACHINE_COUNTS: [usize; 3] = [1, 2, 4];

    fn stream_config(g: &Graph) -> ImConfig {
        ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(g, 0.4, 29)
        }
    }

    /// Two chained batches over real edges of `g`: the first deletes an
    /// existing edge and inserts a fresh one, the second reweights
    /// another existing edge and deletes the fresh insert again.
    fn chained_batches(g: &Graph) -> [Vec<EdgeOp>; 2] {
        let n = g.num_nodes() as u32;
        let mut edges = g.edges();
        let (u1, v1, _) = edges.next().expect("graph has edges");
        let (u2, v2, _) = edges.next().expect("graph has two edges");
        let (iu, iv) = ((u1 + 1) % n, (u1 + 2) % n);
        [
            vec![
                EdgeOp::Delete { u: u1, v: v1 },
                EdgeOp::Insert { u: iu, v: iv, p: 0.3 },
            ],
            vec![
                EdgeOp::Reweight { u: u2, v: v2, p: 0.7 },
                EdgeOp::Delete { u: iu, v: iv },
            ],
        ]
    }

    /// Ground truth: sample `counts[i]` RR sets per machine from scratch
    /// on `g` (same master seed → same per-set streams) and select.
    fn resample_select(
        g: &Graph,
        config: &ImConfig,
        counts: &[u64],
    ) -> (Vec<u32>, Vec<u64>) {
        let workers: Vec<DiimmWorker> = counts
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let mut w = DiimmWorker::new(g, config, i);
                w.generate(count as usize);
                w
            })
            .collect();
        let mut cluster =
            SimCluster::new(workers, NetworkModel::cluster_1gbps(), ExecMode::Sequential);
        let r = dim_coverage::newgreedi_with(&mut cluster, g.num_nodes(), config.k).unwrap();
        (r.seeds, r.marginals)
    }

    /// Incremental apply + select over a persisted chain equals a full
    /// re-sample of the final graph, and a fresh session restored from
    /// the committed chain agrees byte for byte.
    #[test]
    fn stream_repair_matches_full_resample_sim() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = stream_config(&g);
        let batches = chained_batches(&g);
        for machines in STREAM_MACHINE_COUNTS {
            let root = std::env::temp_dir().join(format!(
                "dim-equiv-stream-{}-{machines}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&root).ok();
            let net = NetworkModel::cluster_1gbps();
            diimm_sample_generation(&g, &config, machines, net, ExecMode::Sequential, &root, 8)
                .unwrap();
            let (_, snapshot) = load_latest_rr_snapshot(&g, &config, &root).unwrap();
            let counts: Vec<u64> = snapshot
                .shards
                .iter()
                .map(|s| s.header.num_elements)
                .collect();

            let mut session =
                StreamSession::open(&g, &config, &root, net, ExecMode::Sequential).unwrap();
            let mut tip = g.clone();
            for ops in &batches {
                let applied = session.apply(ops.clone(), true, 8).unwrap();
                assert!(applied.sets_repaired > 0, "ℓ = {machines}: batch repaired nothing");
                let batch = DeltaBatch {
                    seq: 0,
                    ops: ops.clone(),
                };
                tip = apply_batch(&tip, &batch).unwrap();
            }
            let incremental = session.select().unwrap();
            let (seeds, marginals) = resample_select(&tip, &config, &counts);
            assert_eq!(incremental.seeds, seeds, "ℓ = {machines}");
            assert_eq!(incremental.marginals, marginals, "ℓ = {machines}");

            // A cold restart from the committed chain sees the same state.
            let mut reloaded =
                StreamSession::open(&g, &config, &root, net, ExecMode::Sequential).unwrap();
            assert_eq!(reloaded.next_seq(), 2, "ℓ = {machines}");
            let replayed = reloaded.select().unwrap();
            assert_eq!(replayed.seeds, seeds, "ℓ = {machines} (reloaded)");
            assert_eq!(replayed.marginals, marginals, "ℓ = {machines} (reloaded)");
            std::fs::remove_dir_all(&root).ok();
        }
    }

    /// The same contract on the TCP process backend: workers sample a
    /// fixed θ, the master broadcasts `ApplyDelta`, every worker repairs
    /// its resident shard locally, and selection over the repaired
    /// cluster equals a from-scratch re-sample of the mutated graph.
    #[cfg(feature = "proc-backend")]
    #[test]
    fn stream_repair_matches_full_resample_proc() {
        use dim_cluster::ops::{expect_counts, expect_ok};
        use dim_cluster::ProcCluster;

        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = stream_config(&g);
        let batches = chained_batches(&g);
        let theta = 4000u64;
        for machines in STREAM_MACHINE_COUNTS {
            let counts: Vec<u64> = (0..machines as u64)
                .map(|i| theta / machines as u64 + u64::from(i < theta % machines as u64))
                .collect();
            let mut proc = ProcCluster::auto_with(
                machines,
                NetworkModel::cluster_1gbps(),
                config.seed,
                move |i| WorkerHost::new(i, config.seed),
            )
            .expect("loopback worker cluster");
            setup_im_cluster(&mut proc, &g, config.sampler).unwrap();
            let replies = proc
                .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                    count: counts[i],
                })
                .unwrap();
            expect_ok(&replies, phase::RR_SAMPLING).unwrap();

            let mut tip = g.clone();
            for (seq, ops) in batches.iter().enumerate() {
                let batch = DeltaBatch {
                    seq: seq as u64,
                    ops: ops.clone(),
                };
                let mutated = apply_batch(&tip, &batch).unwrap();
                let encoded = batch.encode();
                let parent = graph_fingerprint(&tip);
                let fingerprint = graph_fingerprint(&mutated);
                let spec: SamplerSpec = config.sampler.into();
                let replies = proc
                    .control(phase::STREAM_APPLY, |_| WorkerOp::ApplyDelta {
                        batch: encoded.clone(),
                        persist_dir: None,
                        base_generation: 0,
                        fingerprint,
                        parent_fingerprint: parent,
                        seed: config.seed,
                        theta,
                        shard_count: machines as u32,
                        spec,
                    })
                    .unwrap();
                let repaired = expect_counts(&replies, phase::STREAM_APPLY).unwrap();
                assert!(
                    repaired.iter().sum::<u64>() > 0,
                    "ℓ = {machines}, seq {seq}: batch repaired nothing"
                );
                tip = mutated;
            }

            let r = dim_coverage::newgreedi_with(&mut proc, g.num_nodes(), config.k).unwrap();
            let (seeds, marginals) = resample_select(&tip, &config, &counts);
            assert_eq!(r.seeds, seeds, "ℓ = {machines}");
            assert_eq!(r.marginals, marginals, "ℓ = {machines}");
            assert_eq!(proc.link_errors(), 0, "ℓ = {machines}");
        }
    }
}

/// The TCP process backend is the fourth execution strategy: worker state
/// lives in the endpoints (threads or real `dim-worker` processes), every
/// phase ships real op/reply payloads, and the answer — seeds, marginals,
/// modeled metrics — is identical to the simulated Sequential backend.
#[cfg(feature = "proc-backend")]
mod proc_backend {
    use std::time::Duration;

    use super::*;
    use dim_cluster::ops::expect_ok;
    use dim_cluster::ProcCluster;
    use dim_core::diimm::diimm_on;
    use dim_core::diimm;

    const PROC_MACHINE_COUNTS: [usize; 3] = [1, 2, 4];

    /// Every phase that models byte movement must also have measured real
    /// transfer time on the process backend (op rounds that model no bytes
    /// — sampling control, setup — still measure their real op traffic,
    /// so only the modeled→measured direction is an invariant).
    fn assert_measured_transfers(timeline: &PhaseTimeline, context: &str) {
        let mut moved_any = false;
        for (label, m) in timeline.iter() {
            if m.total_bytes() > 0 {
                moved_any = true;
                assert!(
                    m.measured_comm > Duration::ZERO,
                    "{context}: phase {label} moved {} B without measured transfer time",
                    m.total_bytes()
                );
            }
        }
        assert!(moved_any, "{context}: no phase moved bytes");
    }

    fn proc_cluster(machines: usize, seed: u64) -> ProcCluster {
        ProcCluster::auto_with(machines, NetworkModel::cluster_1gbps(), seed, move |i| {
            WorkerHost::new(i, seed)
        })
        .expect("loopback worker cluster")
    }

    /// DiIMM over worker-resident graph shards — both the §III-C
    /// incremental coverage-reporting path and the full-reupload ablation
    /// — reproduces the simulator bit for bit at every machine count.
    #[test]
    fn diimm_proc_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(&g, 0.4, 29)
        };
        for machines in PROC_MACHINE_COUNTS {
            for incremental in [true, false] {
                let reference = diimm::diimm_with_options(
                    &g,
                    &config,
                    machines,
                    NetworkModel::cluster_1gbps(),
                    ExecMode::Sequential,
                    incremental,
                )
                .unwrap();
                let mut cluster = proc_cluster(machines, config.seed);
                setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
                let r = diimm_on(&mut cluster, &g, &config, incremental).unwrap();
                let ctx = format!("ℓ = {machines}, incremental = {incremental}");
                assert_eq!(r.seeds, reference.seeds, "{ctx}");
                assert_eq!(r.coverage, reference.coverage, "{ctx}");
                assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
                assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
                assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
                // Modeled traffic is backend-independent…
                assert_eq!(
                    r.metrics.bytes_to_master, reference.metrics.bytes_to_master,
                    "{ctx}"
                );
                assert_eq!(
                    r.metrics.bytes_from_master, reference.metrics.bytes_from_master,
                    "{ctx}"
                );
                assert_eq!(r.metrics.messages, reference.metrics.messages, "{ctx}");
                // …while measured transfer time exists only on the real
                // backend.
                assert_eq!(reference.metrics.measured_comm, Duration::ZERO);
                assert_measured_transfers(&r.timeline, &format!("diimm {ctx}"));
                assert_eq!(cluster.link_errors(), 0, "{ctx}");
            }
        }
    }

    /// The SUBSIM cutover on the process backend: worker-resident samplers
    /// (initialized over the wire via `InitSampler`) make the same per-node
    /// jump/coin decisions as the simulator's, so the answer is identical.
    #[test]
    fn diimm_subsim_proc_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = ImConfig {
            k: 6,
            sampler: SamplerKind::Subsim,
            ..ImConfig::paper_defaults(&g, 0.4, 29)
        };
        for machines in [1usize, 2] {
            let reference = diimm::diimm_with_options(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
                true,
            )
            .unwrap();
            let mut cluster = proc_cluster(machines, config.seed);
            setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
            let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
            let ctx = format!("subsim ℓ = {machines}");
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
            assert_eq!(cluster.link_errors(), 0, "{ctx}");
        }
    }

    /// NewGreeDi over shards shipped to the workers once (`BuildShard`)
    /// and interrogated purely through phase ops afterwards.
    #[test]
    fn newgreedi_proc_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.15, 3);
        let problem = CoverageProblem::from_graph_neighborhoods(&g);
        let k = 12;
        for machines in PROC_MACHINE_COUNTS {
            let shards = problem.shard_elements(machines);
            let mut seq = SimCluster::new(
                shards.clone(),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            );
            let reference = newgreedi(&mut seq, k).unwrap();
            let mut proc = proc_cluster(machines, 0xD1A7);
            let replies = proc
                .control(phase::SETUP, |i| WorkerOp::BuildShard {
                    num_sets: problem.num_sets() as u32,
                    elements: shards[i].elements().iter().map(<[u32]>::to_vec).collect(),
                })
                .unwrap();
            expect_ok(&replies, phase::SETUP).unwrap();
            let r = dim_coverage::newgreedi_with(&mut proc, problem.num_sets(), k).unwrap();
            assert_eq!(r, reference, "ℓ = {machines}");
            assert_eq!(r.marginals, reference.marginals, "ℓ = {machines}");
            let metrics = proc.metrics();
            let seq_metrics = seq.metrics();
            assert_eq!(metrics.bytes_to_master, seq_metrics.bytes_to_master);
            assert_eq!(metrics.bytes_from_master, seq_metrics.bytes_from_master);
            assert_eq!(metrics.messages, seq_metrics.messages);
            assert_measured_transfers(proc.timeline(), &format!("newgreedi ℓ = {machines}"));
        }
    }

    /// Process workers persist their *own* resident shard on
    /// `PersistShard` (the sketch never crosses the wire), and the
    /// snapshot they write replays to the same answer as one written by
    /// the in-process simulator.
    #[test]
    fn proc_workers_persist_replayable_snapshot() {
        let g = DatasetProfile::Facebook.generate(0.08, 17);
        let config = ImConfig {
            k: 4,
            ..ImConfig::paper_defaults(&g, 0.5, 7)
        };
        let machines = 2;
        let net = NetworkModel::cluster_1gbps();
        let proc_dir = std::env::temp_dir().join(format!(
            "dim-equiv-proc-snapshot-{}",
            std::process::id()
        ));
        let sim_dir = std::env::temp_dir().join(format!(
            "dim-equiv-sim-snapshot-{}",
            std::process::id()
        ));

        let mut cluster = proc_cluster(machines, config.seed);
        setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
        let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
        persist_rr_shards(&mut cluster, &proc_dir, &g, &config, r.num_rr_sets as u64)
            .unwrap();
        // The save phase is a control round: it models no shard traffic.
        let save = cluster.timeline().get(phase::STORE_SAVE);
        assert_eq!(save.total_bytes(), 0, "PersistShard ships no shard bytes");
        drop(cluster);

        diimm_sample(&g, &config, machines, net, ExecMode::Sequential, &sim_dir).unwrap();
        let from_proc =
            diimm_load_rr(&g, &config, &proc_dir, net, ExecMode::Sequential).unwrap();
        let from_sim =
            diimm_load_rr(&g, &config, &sim_dir, net, ExecMode::Sequential).unwrap();
        assert_eq!(from_proc.seeds, r.seeds);
        assert_eq!(from_proc.marginals, r.marginals);
        assert_eq!(from_proc.seeds, from_sim.seeds);
        assert_eq!(from_proc.coverage, from_sim.coverage);
        assert_eq!(from_proc.num_rr_sets, from_sim.num_rr_sets);
        std::fs::remove_dir_all(&proc_dir).ok();
        std::fs::remove_dir_all(&sim_dir).ok();
    }

    /// The incremental DiIMM traffic optimization must never change the
    /// answer on the process backend — only the upload volume.
    #[test]
    fn incremental_reporting_same_answer_less_upload() {
        let g = DatasetProfile::Facebook.generate(0.08, 17);
        let config = ImConfig {
            k: 4,
            ..ImConfig::paper_defaults(&g, 0.5, 7)
        };
        let mut full = proc_cluster(2, config.seed);
        setup_im_cluster(&mut full, &g, config.sampler).unwrap();
        let r_full = diimm_on(&mut full, &g, &config, false).unwrap();

        let mut inc = proc_cluster(2, config.seed);
        setup_im_cluster(&mut inc, &g, config.sampler).unwrap();
        let r_inc = diimm_on(&mut inc, &g, &config, true).unwrap();

        assert_eq!(r_inc.seeds, r_full.seeds);
        assert_eq!(r_inc.coverage, r_full.coverage);
        assert!(
            r_inc.metrics.bytes_to_master <= r_full.metrics.bytes_to_master,
            "incremental {} B should not exceed full {} B",
            r_inc.metrics.bytes_to_master,
            r_full.metrics.bytes_to_master
        );
    }
}

/// The join backend is the fifth execution strategy: membership assembles
/// from pre-started workers registering with the master's rendezvous
/// point instead of the master spawning them. Same op protocol, same
/// answers — plus session reuse (a worker's resident graph survives into
/// the next run) and heartbeat fail-stop on dead links.
#[cfg(feature = "proc-backend")]
mod join_backend {
    use std::thread;
    use std::time::Duration;

    use super::*;
    use dim_cluster::ops::expect_ok;
    use dim_cluster::tcp::WorkerFault;
    use dim_cluster::JoinCluster;
    use dim_cluster::rendezvous::{self, JoinConfig, JoinOptions, Rendezvous};
    use dim_core::diimm::{diimm_on, diimm_with_options};

    const JOIN_MACHINE_COUNTS: [usize; 3] = [1, 2, 4];

    fn join_config(machines: usize) -> JoinConfig {
        let mut config = JoinConfig::new(machines);
        config.join_timeout = Duration::from_secs(30);
        config.heartbeat_timeout = Duration::from_secs(5);
        config
    }

    /// Pre-starts ℓ loopback join workers on threads, each pinned to its
    /// machine id and serving `sessions` consecutive sessions with one
    /// long-lived [`WorkerHost`] — the deployment shape of
    /// `dim-worker --connect ADDR --join`.
    fn start_workers(
        addr: std::net::SocketAddr,
        machines: usize,
        sessions: usize,
        fault_on: Option<usize>,
    ) -> Vec<thread::JoinHandle<Vec<SessionEnd>>> {
        (0..machines)
            .map(|id| {
                let fault = (fault_on == Some(id))
                    .then_some(WorkerFault::TruncateUpload { request: 3 });
                thread::spawn(move || {
                    let opts = JoinOptions {
                        requested: Some(id as u32),
                        caps: rendezvous::caps::ALL,
                        deadline: Some(Duration::from_secs(30)),
                    };
                    let mut host: Option<WorkerHost> = None;
                    let mut ends = Vec::new();
                    for _ in 0..sessions {
                        let session = rendezvous::run_join_worker(
                            &addr.to_string(),
                            &opts,
                            fault,
                            |welcome| {
                                let host = host.get_or_insert_with(|| {
                                    WorkerHost::new(
                                        welcome.machine_id as usize,
                                        welcome.master_seed,
                                    )
                                });
                                host.reset_session(
                                    welcome.machine_id as usize,
                                    welcome.master_seed,
                                );
                                host
                            },
                        )
                        .expect("join worker serves its session");
                        ends.push(session.end);
                    }
                    ends
                })
            })
            .collect()
    }

    fn accept(rendezvous: &mut Rendezvous, seed: u64) -> JoinCluster {
        rendezvous
            .accept_session(NetworkModel::cluster_1gbps(), seed)
            .expect("loopback join workers assemble in time")
    }

    /// DiIMM over registered (not spawned) workers reproduces the
    /// simulator bit for bit — seeds, coverage, modeled traffic — at every
    /// machine count, and the rendezvous latency lands in the timeline as
    /// a zero-traffic setup phase.
    #[test]
    fn diimm_join_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(&g, 0.4, 29)
        };
        for machines in JOIN_MACHINE_COUNTS {
            let reference = diimm_with_options(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
                true,
            )
            .unwrap();
            let mut rendezvous = Rendezvous::bind("127.0.0.1:0", join_config(machines)).unwrap();
            let workers = start_workers(rendezvous.local_addr().unwrap(), machines, 1, None);
            let mut cluster = accept(&mut rendezvous, config.seed);
            assert_eq!(cluster.session_id(), 1, "join sessions count from 1");
            setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
            let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
            let ctx = format!("ℓ = {machines}");
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            // Rendezvous is bookkeeping, not traffic: modeled bytes and
            // message counts still match the simulator exactly.
            assert_eq!(
                r.metrics.bytes_to_master, reference.metrics.bytes_to_master,
                "{ctx}"
            );
            assert_eq!(
                r.metrics.bytes_from_master, reference.metrics.bytes_from_master,
                "{ctx}"
            );
            assert_eq!(r.metrics.messages, reference.metrics.messages, "{ctx}");
            let (_, rdv) = r
                .timeline
                .iter()
                .find(|(label, _)| *label == phase::RENDEZVOUS)
                .unwrap_or_else(|| panic!("{ctx}: no {} phase in timeline", phase::RENDEZVOUS));
            assert!(rdv.master_compute > Duration::ZERO, "{ctx}");
            assert_eq!(rdv.total_bytes(), 0, "{ctx}: rendezvous models no traffic");
            assert_eq!(cluster.link_errors(), 0, "{ctx}");
            drop(cluster); // Shutdown ops release the workers.
            for w in workers {
                assert_eq!(w.join().unwrap(), vec![SessionEnd::Shutdown], "{ctx}");
            }
        }
    }

    /// The SUBSIM cutover on the join backend: registered (not spawned)
    /// workers running the jump/coin sampler reproduce the sequential
    /// simulator bit for bit.
    #[test]
    fn diimm_subsim_join_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = ImConfig {
            k: 6,
            sampler: SamplerKind::Subsim,
            ..ImConfig::paper_defaults(&g, 0.4, 29)
        };
        let machines = 2;
        let reference = diimm_with_options(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
            true,
        )
        .unwrap();
        let mut rendezvous = Rendezvous::bind("127.0.0.1:0", join_config(machines)).unwrap();
        let workers = start_workers(rendezvous.local_addr().unwrap(), machines, 1, None);
        let mut cluster = accept(&mut rendezvous, config.seed);
        setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
        let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
        assert_eq!(r.seeds, reference.seeds);
        assert_eq!(r.marginals, reference.marginals);
        assert_eq!(r.coverage, reference.coverage);
        assert_eq!(r.num_rr_sets, reference.num_rr_sets);
        assert_eq!(r.total_rr_size, reference.total_rr_size);
        assert_eq!(cluster.link_errors(), 0);
        drop(cluster);
        for w in workers {
            assert_eq!(w.join().unwrap(), vec![SessionEnd::Shutdown]);
        }
    }

    /// NewGreeDi seeds *and per-seed marginals* are byte-identical to the
    /// sequential simulator, and the same master serves two consecutive
    /// sessions to the same re-registering workers — the second session
    /// reuses each worker's resident state path end to end.
    #[test]
    fn newgreedi_join_matches_sequential_across_two_sessions() {
        let g = DatasetProfile::Facebook.generate(0.15, 3);
        let problem = CoverageProblem::from_graph_neighborhoods(&g);
        let k = 12;
        let machines = 2;
        let shards = problem.shard_elements(machines);
        let mut seq = SimCluster::new(
            shards.clone(),
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let reference = newgreedi(&mut seq, k).unwrap();

        let mut rendezvous = Rendezvous::bind("127.0.0.1:0", join_config(machines)).unwrap();
        let workers = start_workers(rendezvous.local_addr().unwrap(), machines, 2, None);
        for session in 1..=2u64 {
            let mut cluster = accept(&mut rendezvous, 0xD1A7);
            assert_eq!(cluster.session_id(), session);
            let replies = cluster
                .control(phase::SETUP, |i| WorkerOp::BuildShard {
                    num_sets: problem.num_sets() as u32,
                    elements: shards[i].elements().iter().map(<[u32]>::to_vec).collect(),
                })
                .unwrap();
            expect_ok(&replies, phase::SETUP).unwrap();
            let r = dim_coverage::newgreedi_with(&mut cluster, problem.num_sets(), k).unwrap();
            assert_eq!(r, reference, "session {session}");
            assert_eq!(r.marginals, reference.marginals, "session {session}");
            cluster.heartbeat().expect("all links alive");
        }
        for w in workers {
            assert_eq!(
                w.join().unwrap(),
                vec![SessionEnd::Shutdown, SessionEnd::Shutdown]
            );
        }
    }

    /// A worker dying mid-round fail-stops with a typed [`WireError`]
    /// naming the machine; the dead link stays dead.
    #[test]
    fn killed_worker_mid_round_names_machine_in_typed_error() {
        let g = DatasetProfile::Facebook.generate(0.08, 17);
        let config = ImConfig {
            k: 4,
            ..ImConfig::paper_defaults(&g, 0.5, 7)
        };
        let machines = 2;
        let faulty = 1;
        let mut rendezvous = Rendezvous::bind("127.0.0.1:0", join_config(machines)).unwrap();
        // The faulty worker truncates its 3rd reply and vanishes —
        // indistinguishable from a machine killed mid-round.
        let workers = start_workers(rendezvous.local_addr().unwrap(), machines, 1, Some(faulty));
        let mut cluster = accept(&mut rendezvous, config.seed);
        let err = setup_im_cluster(&mut cluster, &g, config.sampler)
            .map(|()| diimm_on(&mut cluster, &g, &config, true).map(|_| ()))
            .and_then(|r| r)
            .expect_err("a worker died mid-round");
        assert_eq!(err.machine, Some(faulty), "error names the dead machine");
        assert!(
            err.to_string().contains(&format!("machine {faulty}")),
            "fail-stop message names the machine: {err}"
        );
        assert_eq!(cluster.link_errors(), 1);
        assert_eq!(cluster.live_links(), machines - 1);
        drop(cluster);
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Chaos is the sixth equivalence axis: a fault schedule is an
/// *execution perturbation*, never an algorithm change. Losses and
/// stalls within the configured timeouts must leave the answer
/// byte-identical, and a machine killed mid-run must be speculatively
/// rebuilt (same per-set RNG streams ⇒ same shard) so the degraded run
/// still returns the fault-free seeds and marginals bit for bit.
mod chaos {
    use super::*;
    use dim_core::diimm::{diimm_on, DiimmWorker};

    const CHAOS_MACHINE_COUNTS: [usize; 2] = [2, 4];

    fn chaos_config(g: &Graph) -> ImConfig {
        ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(g, 0.4, 29)
        }
    }

    /// A single-loss policy: ℓ = 2 cannot muster a strict majority after
    /// one kill, so the acceptance runs pin `min_survivors` to 1 — the
    /// paper's fault model tolerates ℓ − 1 losses when the operator
    /// opts in.
    fn single_loss_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            min_survivors: 1,
            ..RecoveryPolicy::resample()
        }
    }

    fn sim_workers<'g>(g: &'g Graph, config: &ImConfig, machines: usize) -> Vec<DiimmWorker<'g>> {
        (0..machines).map(|i| DiimmWorker::new(g, config, i)).collect()
    }

    /// Single-machine loss during RR sampling on the simulated backend:
    /// the run completes via speculative shard rebuild and every output
    /// field — seeds, marginals, coverage, θ, RR mass, edge work — is
    /// byte-identical to the fault-free reference, at ℓ = 2 and ℓ = 4.
    #[test]
    fn single_kill_recovers_byte_identically_sim() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = chaos_config(&g);
        for machines in CHAOS_MACHINE_COUNTS {
            let reference = diimm(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .unwrap();
            let victim = machines - 1;
            let cluster = SimCluster::new(
                sim_workers(&g, &config, machines),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .with_faults(FaultInjector::new(
                FaultPlan::kill_machine(victim as u32, 1),
                machines,
            ));
            let run = diimm_on_recovering(cluster, &g, &config, true, single_loss_policy())
                .unwrap();
            let ctx = format!("ℓ = {machines}");
            let r = &run.result;
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
            let degraded = run.degraded.unwrap_or_else(|| panic!("{ctx}: kill not recorded"));
            assert_eq!(degraded.lost, vec![victim], "{ctx}");
            assert!(degraded.rebuilt_sets > 0, "{ctx}: rebuild produced no sets");
        }
    }

    /// Loss and stall schedules within the configured timeouts cost
    /// virtual time only: a plain `diimm_on` run (no recovery layer at
    /// all) over a lossy, stalling, jittery cluster returns the exact
    /// fault-free answer, while the injector's event log proves the
    /// faults really fired.
    #[test]
    fn loss_and_stalls_within_timeouts_zero_divergence_sim() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = chaos_config(&g);
        for machines in CHAOS_MACHINE_COUNTS {
            let reference = diimm(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .unwrap();
            let plan = FaultPlan {
                chaos_seed: 0xC0FFEE,
                link_faults: (0..machines as u32)
                    .map(|m| LinkFault {
                        machine: m,
                        extra_latency_us: 400,
                        jitter_us: 150,
                        loss_prob_ppm: 300_000,
                        loss_retry_us: 900,
                        stall_prob_ppm: 150_000,
                        stall_ms: 2,
                        ..LinkFault::default()
                    })
                    .collect(),
                ..FaultPlan::default()
            };
            let mut cluster = SimCluster::new(
                sim_workers(&g, &config, machines),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .with_faults(FaultInjector::new(plan, machines));
            let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
            let ctx = format!("ℓ = {machines}");
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
            // Faults must have actually fired for the assertion to mean
            // anything — an empty event log would be a vacuous pass.
            let events = cluster
                .fault_injector()
                .expect("injector stays armed")
                .events();
            assert!(!events.is_empty(), "{ctx}: no fault events fired");
        }
    }

    /// The same single-loss acceptance on the process backend: the
    /// socket-level injector tears the victim's link mid-frame, and the
    /// recovery layer rebuilds its shard from the op log — seeds and
    /// marginals byte-identical to the fault-free sequential reference
    /// at ℓ = 2 and ℓ = 4.
    #[cfg(feature = "chaos")]
    #[test]
    fn single_kill_recovers_byte_identically_proc() {
        use dim_cluster::ProcCluster;

        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = chaos_config(&g);
        for machines in CHAOS_MACHINE_COUNTS {
            let reference = diimm(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .unwrap();
            let victim = machines - 1;
            let seed = config.seed;
            let mut cluster = ProcCluster::auto_with(
                machines,
                NetworkModel::cluster_1gbps(),
                seed,
                move |i| WorkerHost::new(i, seed),
            )
            .expect("loopback worker cluster");
            setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
            // Armed after setup so round 0 is the first algorithm op
            // round — the same clock the simulator's plan uses.
            cluster.set_chaos(Some(FaultInjector::new(
                FaultPlan::kill_machine(victim as u32, 1),
                machines,
            )));
            let run = diimm_on_recovering(cluster, &g, &config, true, single_loss_policy())
                .unwrap();
            let ctx = format!("ℓ = {machines} (proc)");
            let r = &run.result;
            assert_eq!(r.seeds, reference.seeds, "{ctx}");
            assert_eq!(r.marginals, reference.marginals, "{ctx}");
            assert_eq!(r.coverage, reference.coverage, "{ctx}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "{ctx}");
            assert_eq!(r.total_rr_size, reference.total_rr_size, "{ctx}");
            assert_eq!(r.edges_examined, reference.edges_examined, "{ctx}");
            let degraded = run.degraded.unwrap_or_else(|| panic!("{ctx}: kill not recorded"));
            assert_eq!(degraded.lost, vec![victim], "{ctx}");
            assert!(degraded.rebuilt_sets > 0, "{ctx}: rebuild produced no sets");
        }
    }

    /// Stall-only schedules on the process backend are real socket
    /// sleeps, well inside `DIM_HEARTBEAT_TIMEOUT_SECS`: no link dies,
    /// no recovery engages, and the answer does not diverge by a byte.
    #[cfg(feature = "chaos")]
    #[test]
    fn stall_schedule_zero_divergence_proc() {
        use dim_cluster::ProcCluster;

        let g = DatasetProfile::Facebook.generate(0.08, 17);
        let config = ImConfig {
            k: 4,
            ..ImConfig::paper_defaults(&g, 0.5, 7)
        };
        let machines = 2;
        let reference = diimm(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        let seed = config.seed;
        let mut cluster = ProcCluster::auto_with(
            machines,
            NetworkModel::cluster_1gbps(),
            seed,
            move |i| WorkerHost::new(i, seed),
        )
        .expect("loopback worker cluster");
        setup_im_cluster(&mut cluster, &g, config.sampler).unwrap();
        cluster.set_chaos(Some(FaultInjector::new(
            FaultPlan {
                chaos_seed: 0x5742,
                link_faults: vec![LinkFault {
                    machine: 1,
                    extra_latency_us: 500,
                    stall_prob_ppm: 400_000,
                    stall_ms: 5,
                    ..LinkFault::default()
                }],
                ..FaultPlan::default()
            },
            machines,
        )));
        let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
        assert_eq!(r.seeds, reference.seeds);
        assert_eq!(r.marginals, reference.marginals);
        assert_eq!(r.coverage, reference.coverage);
        assert_eq!(r.num_rr_sets, reference.num_rr_sets);
        assert_eq!(cluster.link_errors(), 0, "stalls within timeouts kill no link");
        let events = cluster
            .chaos_injector()
            .expect("injector stays armed")
            .events();
        assert!(!events.is_empty(), "no stall events fired");
    }
}
