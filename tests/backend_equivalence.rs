//! Backend-equivalence tests: every [`ExecMode`] of the simulated cluster
//! must be an *execution strategy*, never an *algorithm change*. DiIMM and
//! NewGreeDi depend only on the per-machine RNG streams (seeded by
//! `stream_seed(master, machine_id)`), so the deterministic sequential
//! loop, the capped OS-thread pool, and the rayon pool must return the
//! same answer bit for bit, at every machine count.

use dim::prelude::*;
use dim_coverage::CoverageShard;

const MACHINE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MODES: [ExecMode; 3] = [ExecMode::Sequential, ExecMode::Threads, ExecMode::Rayon];

/// DiIMM: seeds, coverage, θ, RR-set mass, and the accounted traffic are
/// identical whichever backend executes the phases.
#[test]
fn diimm_identical_across_backends() {
    let g = DatasetProfile::Facebook.generate(0.1, 11);
    let config = ImConfig {
        k: 6,
        ..ImConfig::paper_defaults(&g, 0.4, 29)
    };
    for machines in MACHINE_COUNTS {
        let reference = diimm(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(reference.seeds.len(), 6);
        for mode in [ExecMode::Threads, ExecMode::Rayon] {
            let r = diimm(&g, &config, machines, NetworkModel::cluster_1gbps(), mode).unwrap();
            assert_eq!(r.seeds, reference.seeds, "ℓ = {machines}, {mode:?}");
            assert_eq!(r.coverage, reference.coverage, "ℓ = {machines}, {mode:?}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "ℓ = {machines}, {mode:?}");
            assert_eq!(
                r.total_rr_size, reference.total_rr_size,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.edges_examined, reference.edges_examined,
                "ℓ = {machines}, {mode:?}"
            );
            // Traffic is a function of the message contents, not of the
            // execution strategy.
            assert_eq!(
                r.metrics.bytes_to_master, reference.metrics.bytes_to_master,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.metrics.bytes_from_master, reference.metrics.bytes_from_master,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(
                r.metrics.messages, reference.metrics.messages,
                "ℓ = {machines}, {mode:?}"
            );
            // Same phases in the same order, label for label.
            assert_eq!(
                r.timeline.labels().collect::<Vec<_>>(),
                reference.timeline.labels().collect::<Vec<_>>(),
                "ℓ = {machines}, {mode:?}"
            );
        }
    }
}

/// NewGreeDi: the full result — seeds, coverage, *and per-seed marginals* —
/// is identical across backends for every sharding.
#[test]
fn newgreedi_identical_across_backends() {
    let g = DatasetProfile::Facebook.generate(0.15, 3);
    let problem = CoverageProblem::from_graph_neighborhoods(&g);
    let k = 12;
    for machines in MACHINE_COUNTS {
        let results: Vec<_> = MODES
            .iter()
            .map(|&mode| {
                let mut cluster = SimCluster::new(
                    problem.shard_elements(machines),
                    NetworkModel::cluster_1gbps(),
                    mode,
                );
                let r = newgreedi(&mut cluster, k).unwrap();
                (r, cluster.metrics())
            })
            .collect();
        let (reference, ref_metrics) = &results[0];
        assert_eq!(reference.seeds.len(), k);
        for ((r, m), &mode) in results.iter().zip(MODES.iter()).skip(1) {
            assert_eq!(r, reference, "ℓ = {machines}, {mode:?}");
            assert_eq!(
                r.marginals, reference.marginals,
                "ℓ = {machines}, {mode:?}"
            );
            assert_eq!(m.bytes_to_master, ref_metrics.bytes_to_master);
            assert_eq!(m.bytes_from_master, ref_metrics.bytes_from_master);
            assert_eq!(m.messages, ref_metrics.messages);
        }
    }
}

/// The TCP process backend is the fourth execution strategy: same seeds,
/// marginals, and modeled metrics as the simulated Sequential backend,
/// plus real measured wall-clock on every byte-moving phase.
#[cfg(feature = "proc-backend")]
mod proc_backend {
    use std::time::Duration;

    use super::*;
    use dim_cluster::ProcCluster;
    use dim_core::diimm::{diimm_on, DiimmWorker};

    const PROC_MACHINE_COUNTS: [usize; 3] = [1, 2, 4];

    /// Every phase that models byte movement must also have measured real
    /// transfer time; compute-only phases must not.
    fn assert_measured_transfers(timeline: &PhaseTimeline, context: &str) {
        let mut moved_any = false;
        for (label, m) in timeline.iter() {
            if m.total_bytes() > 0 {
                moved_any = true;
                assert!(
                    m.measured_comm > Duration::ZERO,
                    "{context}: phase {label} moved {} B without measured transfer time",
                    m.total_bytes()
                );
            } else {
                assert_eq!(
                    m.measured_comm,
                    Duration::ZERO,
                    "{context}: compute-only phase {label} measured a transfer"
                );
            }
        }
        assert!(moved_any, "{context}: no phase moved bytes");
    }

    #[test]
    fn diimm_proc_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.1, 11);
        let config = ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(&g, 0.4, 29)
        };
        for machines in PROC_MACHINE_COUNTS {
            let reference = diimm(
                &g,
                &config,
                machines,
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            )
            .unwrap();
            let workers: Vec<DiimmWorker> = (0..machines)
                .map(|i| DiimmWorker::new(&g, &config, i))
                .collect();
            let mut cluster =
                ProcCluster::auto(workers, NetworkModel::cluster_1gbps(), config.seed)
                    .expect("loopback worker cluster");
            let r = diimm_on(&mut cluster, &g, &config, true).unwrap();
            assert_eq!(r.seeds, reference.seeds, "ℓ = {machines}");
            assert_eq!(r.coverage, reference.coverage, "ℓ = {machines}");
            assert_eq!(r.num_rr_sets, reference.num_rr_sets, "ℓ = {machines}");
            assert_eq!(r.edges_examined, reference.edges_examined, "ℓ = {machines}");
            // Modeled traffic is backend-independent…
            assert_eq!(
                r.metrics.bytes_to_master, reference.metrics.bytes_to_master,
                "ℓ = {machines}"
            );
            assert_eq!(
                r.metrics.bytes_from_master, reference.metrics.bytes_from_master,
                "ℓ = {machines}"
            );
            assert_eq!(r.metrics.messages, reference.metrics.messages, "ℓ = {machines}");
            // …while measured transfer time exists only on the real backend.
            assert_eq!(reference.metrics.measured_comm, Duration::ZERO);
            assert_measured_transfers(&r.timeline, &format!("diimm ℓ = {machines}"));
            assert_eq!(cluster.link_errors(), 0, "ℓ = {machines}");
        }
    }

    #[test]
    fn newgreedi_proc_matches_sequential() {
        let g = DatasetProfile::Facebook.generate(0.15, 3);
        let problem = CoverageProblem::from_graph_neighborhoods(&g);
        let k = 12;
        for machines in PROC_MACHINE_COUNTS {
            let mut seq = SimCluster::new(
                problem.shard_elements(machines),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            );
            let reference = newgreedi(&mut seq, k).unwrap();
            let mut proc = ProcCluster::auto(
                problem.shard_elements(machines),
                NetworkModel::cluster_1gbps(),
                0xD1A7,
            )
            .expect("loopback worker cluster");
            let r = newgreedi(&mut proc, k).unwrap();
            assert_eq!(r, reference, "ℓ = {machines}");
            assert_eq!(r.marginals, reference.marginals, "ℓ = {machines}");
            let metrics = proc.metrics();
            let seq_metrics = seq.metrics();
            assert_eq!(metrics.bytes_to_master, seq_metrics.bytes_to_master);
            assert_eq!(metrics.bytes_from_master, seq_metrics.bytes_from_master);
            assert_eq!(metrics.messages, seq_metrics.messages);
            assert_measured_transfers(proc.timeline(), &format!("newgreedi ℓ = {machines}"));
        }
    }
}
