//! Concurrency and correctness of the dim-serve query service: many
//! client threads hammer one server over loopback TCP, and every single
//! reply must equal the direct in-process [`CoverageShard`] computation
//! on an identical sketch. Shutdown must be clean — all threads joined,
//! no socket left accepting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use dim::prelude::*;
use dim_serve::QueryClient;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dim-serve-itest-{}-{tag}-{n}", std::process::id()))
}

/// A tiny deterministic id stream so every thread queries different seed
/// sets without sharing state.
fn pseudo_ids(stream: u64, round: u64, n: u32, len: usize) -> Vec<u32> {
    let mut x = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as u32) % n
        })
        .collect()
}

/// Samples a real DiIMM sketch, serves it, and checks every concurrent
/// reply — spreads and constrained top-k — against direct evaluation.
#[test]
fn concurrent_queries_match_direct_computation() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let config = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 21)
    };
    let dir = temp_dir("concurrent");
    diimm_sample(
        &g,
        &config,
        3,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();

    // Two independent loads: one becomes the served sketch, the other the
    // reference the clients check every reply against.
    let served = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let reference = Arc::new(snapshot_shards(load_rr_snapshot(&g, &config, &dir).unwrap()));
    let theta = served.theta();
    let n = g.num_nodes();

    let server = dim_serve::Server::start("127.0.0.1:0", served).unwrap();
    let addr = server.local_addr();

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 20;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    let seeds = pseudo_ids(t, round, n as u32, (round % 7) as usize);
                    let (covered, spread) = client.spread(&seeds).expect("spread query");
                    let expected = dim_coverage::seed_set_coverage(&reference, &seeds);
                    assert_eq!(covered, expected, "thread {t} round {round}: {seeds:?}");
                    let direct = n as f64 * expected as f64 / theta as f64;
                    assert!((spread - direct).abs() < 1e-9);
                    if round % 5 == 0 {
                        let exclude = pseudo_ids(t ^ 0xFF, round, n as u32, 2);
                        let top = client.top_k(3, &[], &exclude).expect("top-k query");
                        let direct =
                            dim_coverage::constrained_greedy(&reference, 3, &[], &exclude);
                        assert_eq!(top.seeds, direct.seeds, "thread {t} round {round}");
                        assert_eq!(top.marginals, direct.marginals);
                        assert_eq!(top.covered, direct.covered);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let expected_queries = THREADS * (ROUNDS + ROUNDS.div_ceil(5));
    assert_eq!(server.queries_answered(), expected_queries);
    server.shutdown();

    // Clean shutdown: the listener is gone, so either the connect is
    // refused or the dead connection errors on first use.
    match QueryClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(client.spread(&[0]).is_err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hot reload under fire: eight threads hammer the server with pipelined
/// `[Stats, Spread]` batches while the main thread commits three fresh
/// generations to the store and hot-reloads into each one. The server
/// pins every batch to a single generation, so the stats reply inside a
/// batch names exactly which reference sketch its spread answer must be
/// byte-identical to. No query may error, and the generation ids each
/// connection observes must advance monotonically.
#[test]
fn hot_reload_under_fire() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let base = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 21)
    };
    let root = temp_dir("reload-fire");
    let net = NetworkModel::shared_memory();

    // Per-generation reference shards, loaded straight from the store so
    // clients can verify answers against direct evaluation. A generation
    // is inserted here BEFORE the server is told to reload into it, so a
    // hammering thread can always resolve whatever id the server reports.
    type References =
        std::sync::RwLock<std::collections::HashMap<u64, Arc<(u64, Vec<CoverageShard>)>>>;
    let references: Arc<References> = Arc::default();
    let load_reference = |id: u64| {
        let snap = load_snapshot(
            &root.join(generation_dir_name(id)),
            &rr_snapshot_request(&g, &base),
        )
        .expect("load committed generation");
        Arc::new((snap.theta, snapshot_shards(snap)))
    };

    let (first, _) = diimm_sample_generation(&g, &base, 2, net, ExecMode::Sequential, &root, 10)
        .expect("sample generation 1");
    assert_eq!(first, 1);
    references.write().unwrap().insert(1, load_reference(1));

    let (generation, snapshot) = load_latest_rr_snapshot(&g, &base, &root).unwrap();
    assert_eq!(generation, 1);
    let server = dim_serve::Server::start_with(
        "127.0.0.1:0",
        Sketch::from_snapshot(g.num_nodes(), snapshot),
        ServeOptions {
            // One worker stays tied to each connection for its lifetime:
            // 8 hammer connections + the admin client need headroom.
            workers: 12,
            generation,
            reload: Some(ReloadSource {
                root: root.clone(),
                request: rr_snapshot_request(&g, &base),
                num_nodes: g.num_nodes(),
            }),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let n = g.num_nodes() as u32;
    const HAMMERS: u64 = 8;
    let workers: Vec<_> = (0..HAMMERS)
        .map(|t| {
            let references = Arc::clone(&references);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                let mut last_generation = 0u64;
                let mut seen = std::collections::BTreeSet::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) || round < 20 {
                    let seeds = pseudo_ids(t, round, n, (round % 7) as usize);
                    let replies = client
                        .batch(&[
                            QueryRequest::Stats,
                            QueryRequest::Spread {
                                seeds: seeds.clone(),
                            },
                        ])
                        .expect("batched query during reload");
                    let [QueryResponse::Stats(stats), QueryResponse::Spread { covered, theta, .. }] =
                        &replies[..]
                    else {
                        panic!("thread {t} round {round}: unexpected replies {replies:?}");
                    };
                    assert!(
                        stats.generation >= last_generation,
                        "thread {t}: generation went backwards ({} after {})",
                        stats.generation,
                        last_generation
                    );
                    last_generation = stats.generation;
                    seen.insert(stats.generation);
                    let reference = references
                        .read()
                        .unwrap()
                        .get(&stats.generation)
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!("server reported unknown generation {}", stats.generation)
                        });
                    assert_eq!(*theta, reference.0, "theta must match the pinned generation");
                    assert_eq!(
                        *covered,
                        dim_coverage::seed_set_coverage(&reference.1, &seeds),
                        "thread {t} round {round} generation {}: {seeds:?}",
                        stats.generation
                    );
                    round += 1;
                }
                seen
            })
        })
        .collect();

    // Commit and reload three newer generations while the hammering runs.
    // A different sampling seed per generation changes the sketch content,
    // so a stale answer would be caught by the byte-identical check.
    let mut admin = QueryClient::connect(addr).expect("admin connect");
    for expected in 2..=4u64 {
        let config = ImConfig {
            seed: base.seed + expected,
            ..base
        };
        let (id, _) = diimm_sample_generation(&g, &config, 2, net, ExecMode::Sequential, &root, 10)
            .expect("sample newer generation");
        assert_eq!(id, expected);
        references.write().unwrap().insert(id, load_reference(id));
        let (gen, changed) = admin.reload().expect("wire reload");
        assert_eq!(gen, expected);
        assert!(changed, "reload must swap to the newer generation");
        thread::sleep(std::time::Duration::from_millis(50));
    }

    stop.store(true, Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for w in workers {
        observed.extend(w.join().expect("hammer thread panicked"));
    }
    assert!(
        observed.contains(&1) && observed.contains(&4),
        "hammering threads never straddled the swaps: observed {observed:?}"
    );

    assert_eq!(server.generation(), 4);
    let metrics = server.metrics();
    assert_eq!(metrics.active_generation, 4);
    assert_eq!(metrics.reloads, 3);
    assert!(metrics.batches_answered >= HAMMERS * 20);
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Streamed delta generations are first-class reload targets: while
/// client threads hammer the server, a [`StreamSession`] applies edge
/// batches (each committing a delta generation), compacts the chain into
/// a fresh standalone base, streams past the compaction, and GCs old
/// generations — and the server hot-reloads through every one of them
/// with zero query errors, every answer byte-identical to the folded
/// chain the reported generation pins.
#[test]
fn stream_generations_hot_reload_under_fire() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let base = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 37)
    };
    let root = temp_dir("stream-fire");
    let net = NetworkModel::shared_memory();
    let request = rr_snapshot_request(&g, &base);

    // Per-generation reference shards: each entry is the *folded chain*
    // as of that generation's commit, loaded through the same chain-aware
    // path the server reloads through, and inserted BEFORE the server is
    // told to reload — so hammering threads can always resolve whatever
    // id the server reports.
    type References =
        std::sync::RwLock<std::collections::HashMap<u64, Arc<(u64, Vec<CoverageShard>)>>>;
    let references: Arc<References> = Arc::default();
    let load_latest_reference = |expected: u64| {
        let (id, snap) = load_latest_snapshot(&root, &request).expect("load folded chain");
        assert_eq!(id, expected, "newest committed generation");
        Arc::new((snap.theta, snapshot_shards(snap)))
    };

    let (first, _) = diimm_sample_generation(&g, &base, 2, net, ExecMode::Sequential, &root, 10)
        .expect("sample generation 1");
    assert_eq!(first, 1);
    references
        .write()
        .unwrap()
        .insert(1, load_latest_reference(1));

    let (generation, snapshot) = load_latest_rr_snapshot(&g, &base, &root).unwrap();
    let server = dim_serve::Server::start_with(
        "127.0.0.1:0",
        Sketch::from_snapshot(g.num_nodes(), snapshot),
        ServeOptions {
            workers: 10,
            generation,
            reload: Some(ReloadSource {
                root: root.clone(),
                request: request.clone(),
                num_nodes: g.num_nodes(),
            }),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let n = g.num_nodes() as u32;
    const HAMMERS: u64 = 6;
    let workers: Vec<_> = (0..HAMMERS)
        .map(|t| {
            let references = Arc::clone(&references);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                let mut last_generation = 0u64;
                let mut seen = std::collections::BTreeSet::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) || round < 20 {
                    let seeds = pseudo_ids(t ^ 0xBEEF, round, n, (round % 7) as usize);
                    let replies = client
                        .batch(&[
                            QueryRequest::Stats,
                            QueryRequest::Spread {
                                seeds: seeds.clone(),
                            },
                        ])
                        .expect("batched query during streamed reload");
                    let [QueryResponse::Stats(stats), QueryResponse::Spread { covered, theta, .. }] =
                        &replies[..]
                    else {
                        panic!("thread {t} round {round}: unexpected replies {replies:?}");
                    };
                    assert!(
                        stats.generation >= last_generation,
                        "thread {t}: generation went backwards ({} after {})",
                        stats.generation,
                        last_generation
                    );
                    last_generation = stats.generation;
                    seen.insert(stats.generation);
                    let reference = references
                        .read()
                        .unwrap()
                        .get(&stats.generation)
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!("server reported unknown generation {}", stats.generation)
                        });
                    assert_eq!(*theta, reference.0, "theta must match the pinned generation");
                    assert_eq!(
                        *covered,
                        dim_coverage::seed_set_coverage(&reference.1, &seeds),
                        "thread {t} round {round} generation {}: {seeds:?}",
                        stats.generation
                    );
                    round += 1;
                }
                seen
            })
        })
        .collect();

    // Stream against the store while the hammering runs: two delta
    // generations, a compaction, and one more delta past it. Every commit
    // is followed by a wire reload.
    let mut session =
        StreamSession::open(&g, &base, &root, net, ExecMode::Sequential).expect("open session");
    let mut edges = g.edges();
    let (u1, v1, _) = edges.next().expect("graph has edges");
    let (u2, v2, _) = edges.next().expect("graph has two edges");
    let steps: Vec<(Option<Vec<EdgeOp>>, u64)> = vec![
        // Delta generation 2: delete a sampled edge, insert a fresh one.
        (
            Some(vec![
                EdgeOp::Delete { u: u1, v: v1 },
                EdgeOp::Insert {
                    u: (u1 + 1) % n,
                    v: (u1 + 2) % n,
                    p: 0.4,
                },
            ]),
            2,
        ),
        // Delta generation 3.
        (Some(vec![EdgeOp::Reweight { u: u2, v: v2, p: 0.8 }]), 3),
        // Generation 4: the chain folded into a standalone base.
        (None, 4),
        // Delta generation 5, chained off the compacted base. keep = 2
        // GCs generations 1–3 out from under the server mid-flight.
        (Some(vec![EdgeOp::Delete { u: u2, v: v2 }]), 5),
    ];
    let mut admin = QueryClient::connect(addr).expect("admin connect");
    for (ops, expected) in steps {
        let committed = match ops {
            Some(ops) => {
                let keep = if expected == 5 { 2 } else { 10 };
                let applied = session.apply(ops, true, keep).expect("apply batch");
                assert!(applied.sets_repaired > 0, "generation {expected} repaired nothing");
                applied.generation.expect("persisted apply commits")
            }
            None => session
                .compact(10)
                .expect("compact chain")
                .expect("chain has batches to fold"),
        };
        assert_eq!(committed, expected);
        references
            .write()
            .unwrap()
            .insert(expected, load_latest_reference(expected));
        let (gen, changed) = admin.reload().expect("wire reload");
        assert_eq!(gen, expected);
        assert!(changed, "reload must swap to generation {expected}");
        thread::sleep(std::time::Duration::from_millis(40));
    }

    stop.store(true, Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for w in workers {
        observed.extend(w.join().expect("hammer thread panicked"));
    }
    assert!(
        observed.contains(&1) && observed.contains(&5),
        "hammering threads never straddled the swaps: observed {observed:?}"
    );

    assert_eq!(server.generation(), 5);
    let metrics = server.metrics();
    assert_eq!(metrics.active_generation, 5);
    assert_eq!(metrics.reloads, 4);
    server.shutdown();
    // GC swept the pre-compaction generations; the compacted base (the
    // live chain's root) and its delta survive.
    let left: Vec<u64> = list_generations(&root)
        .unwrap()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(left, vec![4, 5]);
    std::fs::remove_dir_all(&root).ok();
}

/// The unconstrained top-k answer served over the wire IS the persisted
/// run's seed set — sample once, query forever.
#[test]
fn served_topk_equals_sampled_run() {
    let g = DatasetProfile::Facebook.generate(0.08, 9);
    let config = ImConfig {
        k: 5,
        ..ImConfig::paper_defaults(&g, 0.5, 33)
    };
    let dir = temp_dir("topk");
    let sampled = diimm_sample(
        &g,
        &config,
        2,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();
    let sketch = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let server = dim_serve::Server::start("127.0.0.1:0", sketch).unwrap();
    let mut client = QueryClient::connect(server.local_addr()).unwrap();

    let top = client.top_k(config.k as u32, &[], &[]).unwrap();
    assert_eq!(top.seeds, sampled.seeds);
    assert_eq!(top.marginals, sampled.marginals);
    assert_eq!(top.covered, sampled.coverage);

    // And the serving stats describe the sketch exactly.
    let stats = client.stats().unwrap();
    assert_eq!(stats.theta as usize, sampled.num_rr_sets);
    assert_eq!(stats.total_rr_size as usize, sampled.total_rr_size);
    assert_eq!(stats.shard_count, 2);
    assert_eq!(stats.num_nodes as usize, g.num_nodes());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
