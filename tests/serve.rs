//! Concurrency and correctness of the dim-serve query service: many
//! client threads hammer one server over loopback TCP, and every single
//! reply must equal the direct in-process [`CoverageShard`] computation
//! on an identical sketch. Shutdown must be clean — all threads joined,
//! no socket left accepting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use dim::prelude::*;
use dim_serve::proto::{ERR_QUOTA, ERR_UNAUTHORIZED, ERR_UNKNOWN_TENANT};
use dim_serve::QueryClient;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dim-serve-itest-{}-{tag}-{n}", std::process::id()))
}

/// A tiny deterministic id stream so every thread queries different seed
/// sets without sharing state.
fn pseudo_ids(stream: u64, round: u64, n: u32, len: usize) -> Vec<u32> {
    let mut x = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as u32) % n
        })
        .collect()
}

/// Samples a real DiIMM sketch, serves it, and checks every concurrent
/// reply — spreads and constrained top-k — against direct evaluation.
#[test]
fn concurrent_queries_match_direct_computation() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let config = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 21)
    };
    let dir = temp_dir("concurrent");
    diimm_sample(
        &g,
        &config,
        3,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();

    // Two independent loads: one becomes the served sketch, the other the
    // reference the clients check every reply against.
    let served = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let reference = Arc::new(snapshot_shards(load_rr_snapshot(&g, &config, &dir).unwrap()));
    let theta = served.theta();
    let n = g.num_nodes();

    let server = dim_serve::Server::start("127.0.0.1:0", served).unwrap();
    let addr = server.local_addr();

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 20;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    let seeds = pseudo_ids(t, round, n as u32, (round % 7) as usize);
                    let (covered, spread) = client.spread(&seeds).expect("spread query");
                    let expected = dim_coverage::seed_set_coverage(&reference, &seeds);
                    assert_eq!(covered, expected, "thread {t} round {round}: {seeds:?}");
                    let direct = n as f64 * expected as f64 / theta as f64;
                    assert!((spread - direct).abs() < 1e-9);
                    if round % 5 == 0 {
                        let exclude = pseudo_ids(t ^ 0xFF, round, n as u32, 2);
                        let top = client.top_k(3, &[], &exclude).expect("top-k query");
                        let direct =
                            dim_coverage::constrained_greedy(&reference, 3, &[], &exclude);
                        assert_eq!(top.seeds, direct.seeds, "thread {t} round {round}");
                        assert_eq!(top.marginals, direct.marginals);
                        assert_eq!(top.covered, direct.covered);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let expected_queries = THREADS * (ROUNDS + ROUNDS.div_ceil(5));
    assert_eq!(server.queries_answered(), expected_queries);
    server.shutdown();

    // Clean shutdown: the listener is gone, so either the connect is
    // refused or the dead connection errors on first use.
    match QueryClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(client.spread(&[0]).is_err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hot reload under fire: eight threads hammer the server with pipelined
/// `[Stats, Spread]` batches while the main thread commits three fresh
/// generations to the store and hot-reloads into each one. The server
/// pins every batch to a single generation, so the stats reply inside a
/// batch names exactly which reference sketch its spread answer must be
/// byte-identical to. No query may error, and the generation ids each
/// connection observes must advance monotonically.
#[test]
fn hot_reload_under_fire() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let base = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 21)
    };
    let root = temp_dir("reload-fire");
    let net = NetworkModel::shared_memory();

    // Per-generation reference shards, loaded straight from the store so
    // clients can verify answers against direct evaluation. A generation
    // is inserted here BEFORE the server is told to reload into it, so a
    // hammering thread can always resolve whatever id the server reports.
    type References =
        std::sync::RwLock<std::collections::HashMap<u64, Arc<(u64, Vec<CoverageShard>)>>>;
    let references: Arc<References> = Arc::default();
    let load_reference = |id: u64| {
        let snap = load_snapshot(
            &root.join(generation_dir_name(id)),
            &rr_snapshot_request(&g, &base),
        )
        .expect("load committed generation");
        Arc::new((snap.theta, snapshot_shards(snap)))
    };

    let (first, _) = diimm_sample_generation(&g, &base, 2, net, ExecMode::Sequential, &root, 10)
        .expect("sample generation 1");
    assert_eq!(first, 1);
    references.write().unwrap().insert(1, load_reference(1));

    let (generation, snapshot) = load_latest_rr_snapshot(&g, &base, &root).unwrap();
    assert_eq!(generation, 1);
    let server = dim_serve::Server::start_with(
        "127.0.0.1:0",
        Sketch::from_snapshot(g.num_nodes(), snapshot),
        ServeOptions {
            // One worker stays tied to each connection for its lifetime:
            // 8 hammer connections + the admin client need headroom.
            workers: 12,
            generation,
            reload: Some(ReloadSource {
                root: root.clone(),
                request: rr_snapshot_request(&g, &base),
                num_nodes: g.num_nodes(),
            }),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let n = g.num_nodes() as u32;
    const HAMMERS: u64 = 8;
    let workers: Vec<_> = (0..HAMMERS)
        .map(|t| {
            let references = Arc::clone(&references);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                let mut last_generation = 0u64;
                let mut seen = std::collections::BTreeSet::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) || round < 20 {
                    let seeds = pseudo_ids(t, round, n, (round % 7) as usize);
                    let replies = client
                        .batch(&[
                            QueryRequest::Stats,
                            QueryRequest::Spread {
                                seeds: seeds.clone(),
                            },
                        ])
                        .expect("batched query during reload");
                    let [QueryResponse::Stats(stats), QueryResponse::Spread { covered, theta, .. }] =
                        &replies[..]
                    else {
                        panic!("thread {t} round {round}: unexpected replies {replies:?}");
                    };
                    assert!(
                        stats.generation >= last_generation,
                        "thread {t}: generation went backwards ({} after {})",
                        stats.generation,
                        last_generation
                    );
                    last_generation = stats.generation;
                    seen.insert(stats.generation);
                    let reference = references
                        .read()
                        .unwrap()
                        .get(&stats.generation)
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!("server reported unknown generation {}", stats.generation)
                        });
                    assert_eq!(*theta, reference.0, "theta must match the pinned generation");
                    assert_eq!(
                        *covered,
                        dim_coverage::seed_set_coverage(&reference.1, &seeds),
                        "thread {t} round {round} generation {}: {seeds:?}",
                        stats.generation
                    );
                    round += 1;
                }
                seen
            })
        })
        .collect();

    // Commit and reload three newer generations while the hammering runs.
    // A different sampling seed per generation changes the sketch content,
    // so a stale answer would be caught by the byte-identical check.
    let mut admin = QueryClient::connect(addr).expect("admin connect");
    for expected in 2..=4u64 {
        let config = ImConfig {
            seed: base.seed + expected,
            ..base
        };
        let (id, _) = diimm_sample_generation(&g, &config, 2, net, ExecMode::Sequential, &root, 10)
            .expect("sample newer generation");
        assert_eq!(id, expected);
        references.write().unwrap().insert(id, load_reference(id));
        let (gen, changed) = admin.reload().expect("wire reload");
        assert_eq!(gen, expected);
        assert!(changed, "reload must swap to the newer generation");
        thread::sleep(std::time::Duration::from_millis(50));
    }

    stop.store(true, Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for w in workers {
        observed.extend(w.join().expect("hammer thread panicked"));
    }
    assert!(
        observed.contains(&1) && observed.contains(&4),
        "hammering threads never straddled the swaps: observed {observed:?}"
    );

    assert_eq!(server.generation(), 4);
    let metrics = server.metrics();
    assert_eq!(metrics.active_generation, 4);
    assert_eq!(metrics.reloads, 3);
    assert!(metrics.batches_answered >= HAMMERS * 20);
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Streamed delta generations are first-class reload targets: while
/// client threads hammer the server, a [`StreamSession`] applies edge
/// batches (each committing a delta generation), compacts the chain into
/// a fresh standalone base, streams past the compaction, and GCs old
/// generations — and the server hot-reloads through every one of them
/// with zero query errors, every answer byte-identical to the folded
/// chain the reported generation pins.
#[test]
fn stream_generations_hot_reload_under_fire() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let base = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 37)
    };
    let root = temp_dir("stream-fire");
    let net = NetworkModel::shared_memory();
    let request = rr_snapshot_request(&g, &base);

    // Per-generation reference shards: each entry is the *folded chain*
    // as of that generation's commit, loaded through the same chain-aware
    // path the server reloads through, and inserted BEFORE the server is
    // told to reload — so hammering threads can always resolve whatever
    // id the server reports.
    type References =
        std::sync::RwLock<std::collections::HashMap<u64, Arc<(u64, Vec<CoverageShard>)>>>;
    let references: Arc<References> = Arc::default();
    let load_latest_reference = |expected: u64| {
        let (id, snap) = load_latest_snapshot(&root, &request).expect("load folded chain");
        assert_eq!(id, expected, "newest committed generation");
        Arc::new((snap.theta, snapshot_shards(snap)))
    };

    let (first, _) = diimm_sample_generation(&g, &base, 2, net, ExecMode::Sequential, &root, 10)
        .expect("sample generation 1");
    assert_eq!(first, 1);
    references
        .write()
        .unwrap()
        .insert(1, load_latest_reference(1));

    let (generation, snapshot) = load_latest_rr_snapshot(&g, &base, &root).unwrap();
    let server = dim_serve::Server::start_with(
        "127.0.0.1:0",
        Sketch::from_snapshot(g.num_nodes(), snapshot),
        ServeOptions {
            workers: 10,
            generation,
            reload: Some(ReloadSource {
                root: root.clone(),
                request: request.clone(),
                num_nodes: g.num_nodes(),
            }),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let n = g.num_nodes() as u32;
    const HAMMERS: u64 = 6;
    let workers: Vec<_> = (0..HAMMERS)
        .map(|t| {
            let references = Arc::clone(&references);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                let mut last_generation = 0u64;
                let mut seen = std::collections::BTreeSet::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) || round < 20 {
                    let seeds = pseudo_ids(t ^ 0xBEEF, round, n, (round % 7) as usize);
                    let replies = client
                        .batch(&[
                            QueryRequest::Stats,
                            QueryRequest::Spread {
                                seeds: seeds.clone(),
                            },
                        ])
                        .expect("batched query during streamed reload");
                    let [QueryResponse::Stats(stats), QueryResponse::Spread { covered, theta, .. }] =
                        &replies[..]
                    else {
                        panic!("thread {t} round {round}: unexpected replies {replies:?}");
                    };
                    assert!(
                        stats.generation >= last_generation,
                        "thread {t}: generation went backwards ({} after {})",
                        stats.generation,
                        last_generation
                    );
                    last_generation = stats.generation;
                    seen.insert(stats.generation);
                    let reference = references
                        .read()
                        .unwrap()
                        .get(&stats.generation)
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!("server reported unknown generation {}", stats.generation)
                        });
                    assert_eq!(*theta, reference.0, "theta must match the pinned generation");
                    assert_eq!(
                        *covered,
                        dim_coverage::seed_set_coverage(&reference.1, &seeds),
                        "thread {t} round {round} generation {}: {seeds:?}",
                        stats.generation
                    );
                    round += 1;
                }
                seen
            })
        })
        .collect();

    // Stream against the store while the hammering runs: two delta
    // generations, a compaction, and one more delta past it. Every commit
    // is followed by a wire reload.
    let mut session =
        StreamSession::open(&g, &base, &root, net, ExecMode::Sequential).expect("open session");
    let mut edges = g.edges();
    let (u1, v1, _) = edges.next().expect("graph has edges");
    let (u2, v2, _) = edges.next().expect("graph has two edges");
    let steps: Vec<(Option<Vec<EdgeOp>>, u64)> = vec![
        // Delta generation 2: delete a sampled edge, insert a fresh one.
        (
            Some(vec![
                EdgeOp::Delete { u: u1, v: v1 },
                EdgeOp::Insert {
                    u: (u1 + 1) % n,
                    v: (u1 + 2) % n,
                    p: 0.4,
                },
            ]),
            2,
        ),
        // Delta generation 3.
        (Some(vec![EdgeOp::Reweight { u: u2, v: v2, p: 0.8 }]), 3),
        // Generation 4: the chain folded into a standalone base.
        (None, 4),
        // Delta generation 5, chained off the compacted base. keep = 2
        // GCs generations 1–3 out from under the server mid-flight.
        (Some(vec![EdgeOp::Delete { u: u2, v: v2 }]), 5),
    ];
    let mut admin = QueryClient::connect(addr).expect("admin connect");
    for (ops, expected) in steps {
        let committed = match ops {
            Some(ops) => {
                let keep = if expected == 5 { 2 } else { 10 };
                let applied = session.apply(ops, true, keep).expect("apply batch");
                assert!(applied.sets_repaired > 0, "generation {expected} repaired nothing");
                applied.generation.expect("persisted apply commits")
            }
            None => session
                .compact(10)
                .expect("compact chain")
                .expect("chain has batches to fold"),
        };
        assert_eq!(committed, expected);
        references
            .write()
            .unwrap()
            .insert(expected, load_latest_reference(expected));
        let (gen, changed) = admin.reload().expect("wire reload");
        assert_eq!(gen, expected);
        assert!(changed, "reload must swap to generation {expected}");
        thread::sleep(std::time::Duration::from_millis(40));
    }

    stop.store(true, Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for w in workers {
        observed.extend(w.join().expect("hammer thread panicked"));
    }
    assert!(
        observed.contains(&1) && observed.contains(&5),
        "hammering threads never straddled the swaps: observed {observed:?}"
    );

    assert_eq!(server.generation(), 5);
    let metrics = server.metrics();
    assert_eq!(metrics.active_generation, 5);
    assert_eq!(metrics.reloads, 4);
    server.shutdown();
    // GC swept the pre-compaction generations; the compacted base (the
    // live chain's root) and its delta survive.
    let left: Vec<u64> = list_generations(&root)
        .unwrap()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(left, vec![4, 5]);
    std::fs::remove_dir_all(&root).ok();
}

/// Multi-tenant acceptance: two tenants served concurrently from ONE
/// daemon return byte-identical answers to two single-tenant daemons
/// over the same stores. While a hammering thread keeps one tenant's
/// queries in flight, the other tenant's failure modes — wrong token,
/// unknown tenant, query-before-auth, tripped batch quota — each get
/// their distinct typed error without disturbing it, including across a
/// hot reload that swaps only one tenant's generation.
#[test]
fn multi_tenant_matches_single_tenant_daemons() {
    let g_a = DatasetProfile::Facebook.generate(0.08, 5);
    let g_b = DatasetProfile::Facebook.generate(0.08, 9);
    let cfg_a = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g_a, 0.5, 21)
    };
    let cfg_b = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g_b, 0.5, 33)
    };
    let dir_a = temp_dir("mt-acme");
    let dir_b = temp_dir("mt-globex");
    let net = NetworkModel::shared_memory();
    let (gen_a, _) =
        diimm_sample_generation(&g_a, &cfg_a, 2, net, ExecMode::Sequential, &dir_a, 10).unwrap();
    let (gen_b, _) =
        diimm_sample_generation(&g_b, &cfg_b, 2, net, ExecMode::Sequential, &dir_b, 10).unwrap();
    assert_eq!((gen_a, gen_b), (1, 1));

    let load =
        |g: &Graph, cfg: &ImConfig, root: &std::path::Path| -> (u64, Sketch, ReloadSource) {
            let (generation, snapshot) = load_latest_rr_snapshot(g, cfg, root).unwrap();
            let reload = ReloadSource {
                root: root.to_path_buf(),
                request: rr_snapshot_request(g, cfg),
                num_nodes: g.num_nodes(),
            };
            (generation, Sketch::from_snapshot(g.num_nodes(), snapshot), reload)
        };

    // The two single-tenant reference daemons.
    let start_single = |g: &Graph, cfg: &ImConfig, root: &std::path::Path| {
        let (generation, sketch, reload) = load(g, cfg, root);
        dim_serve::Server::start_with(
            "127.0.0.1:0",
            sketch,
            ServeOptions {
                generation,
                reload: Some(reload),
                ..ServeOptions::default()
            },
        )
        .unwrap()
    };
    let single_a = start_single(&g_a, &cfg_a, &dir_a);
    let single_b = start_single(&g_b, &cfg_b, &dir_b);

    // The multi-tenant daemon over the SAME stores. Acme gets a tight
    // batch quota so the quota path can be tripped deterministically.
    let acme = Credentials::new("acme", "acme-secret");
    let globex = Credentials::new("globex", "globex-secret");
    let bind = |creds: &Credentials,
                g: &Graph,
                cfg: &ImConfig,
                root: &std::path::Path,
                quota: TenantQuota| {
        let (generation, sketch, reload) = load(g, cfg, root);
        TenantBind {
            spec: TenantSpec {
                id: creds.tenant.clone(),
                auth: creds.digest(),
                store: None,
                graph: None,
                quota,
            },
            sketch,
            generation,
            reload: Some(reload),
        }
    };
    let multi = dim_serve::Server::start_multi(
        "127.0.0.1:0",
        vec![
            bind(
                &acme,
                &g_a,
                &cfg_a,
                &dir_a,
                TenantQuota {
                    max_batch: 4,
                    ..TenantQuota::default()
                },
            ),
            bind(&globex, &g_b, &cfg_b, &dir_b, TenantQuota::default()),
        ],
        ServeOptions {
            workers: 8,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let multi_addr = multi.local_addr();
    let single_a_addr = single_a.local_addr();
    let single_b_addr = single_b.local_addr();

    // The probe queries answers are compared over: spreads of several
    // seed sets plus a constrained top-k. Stats is excluded — counters
    // legitimately differ between daemons.
    let probes = |n: u32| -> Vec<QueryRequest> {
        let mut reqs: Vec<QueryRequest> = (0..6u64)
            .map(|round| QueryRequest::Spread {
                seeds: pseudo_ids(11, round, n, (round % 5) as usize),
            })
            .collect();
        reqs.push(QueryRequest::TopK {
            k: 3,
            include: vec![],
            exclude: pseudo_ids(13, 1, n, 2),
        });
        reqs
    };
    let assert_identical = |tenant: &Credentials, single_addr: std::net::SocketAddr, n: u32| {
        let mut scoped = QueryClient::connect(multi_addr).unwrap();
        scoped.authenticate(tenant).unwrap();
        let mut reference = QueryClient::connect(single_addr).unwrap();
        for req in probes(n) {
            let got = scoped.request(&req).unwrap();
            let want = reference.request(&req).unwrap();
            assert_eq!(got, want, "tenant {:?} diverged on {req:?}", tenant.tenant);
        }
    };
    assert_identical(&acme, single_a_addr, g_a.num_nodes() as u32);
    assert_identical(&globex, single_b_addr, g_b.num_nodes() as u32);

    // Globex hammer: keeps queries in flight on the multi daemon for the
    // whole error dance and the acme-only reload, checking every answer
    // against the single-tenant daemon B live.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        let globex = globex.clone();
        let n = g_b.num_nodes() as u32;
        thread::spawn(move || {
            let mut scoped = QueryClient::connect(multi_addr).unwrap();
            scoped.authenticate(&globex).unwrap();
            let mut reference = QueryClient::connect(single_b_addr).unwrap();
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) || rounds < 30 {
                let req = QueryRequest::Spread {
                    seeds: pseudo_ids(3, rounds, n, (rounds % 6) as usize),
                };
                let got = scoped.request(&req).expect("globex query during acme faults");
                let want = reference.request(&req).unwrap();
                assert_eq!(got, want, "globex diverged at round {rounds}");
                rounds += 1;
            }
            rounds
        })
    };

    // Distinct typed errors, each on a fresh connection (failed auth and
    // pre-auth queries close the connection by design).
    let expect_error = |req: &QueryRequest, code: u8, what: &str| {
        let mut probe = QueryClient::connect(multi_addr).unwrap();
        match probe.request(req).unwrap() {
            QueryResponse::Error { code: got, .. } => {
                assert_eq!(got, code, "{what}: wrong error code")
            }
            other => panic!("{what}: expected typed error, got {other:?}"),
        }
    };
    expect_error(
        &Credentials::new("acme", "not-the-secret").auth_request(),
        ERR_UNAUTHORIZED,
        "wrong token",
    );
    expect_error(
        &Credentials::new("nobody", "acme-secret").auth_request(),
        ERR_UNKNOWN_TENANT,
        "unknown tenant",
    );
    expect_error(
        &QueryRequest::Spread { seeds: vec![0] },
        ERR_UNAUTHORIZED,
        "query before auth",
    );

    // Tripping acme's batch quota is a typed refusal that keeps the
    // connection usable — and is charged to acme's ledger only.
    let mut acme_client = QueryClient::connect(multi_addr).unwrap();
    acme_client.authenticate(&acme).unwrap();
    let oversized: Vec<QueryRequest> = (0..8)
        .map(|i| QueryRequest::Spread { seeds: vec![i] })
        .collect();
    let err = acme_client.batch(&oversized).unwrap_err();
    assert!(
        err.to_string().contains(&format!("server error {ERR_QUOTA}")),
        "oversized batch must be refused with ERR_QUOTA, got: {err}"
    );
    assert!(acme_client.spread(&[0, 1]).is_ok(), "connection must survive ERR_QUOTA");
    let quota_shed = |id: &str| multi.tenant(id).unwrap().metrics().quota_shed;
    assert_eq!(quota_shed("acme"), 1);
    assert_eq!(quota_shed("globex"), 0);

    // Acme-only hot reload: a fresh generation in store A (different
    // sampling seed, same provenance) swaps acme's sketch while globex's
    // generation — and its in-flight answers — stay put.
    let cfg_a2 = ImConfig {
        seed: cfg_a.seed + 1,
        ..cfg_a
    };
    let (id, _) =
        diimm_sample_generation(&g_a, &cfg_a2, 2, net, ExecMode::Sequential, &dir_a, 10).unwrap();
    assert_eq!(id, 2);
    let (gen, changed) = acme_client.reload().expect("wire reload scoped to acme");
    assert_eq!((gen, changed), (2, true));
    assert_eq!(multi.tenant("acme").unwrap().generation(), 2);
    assert_eq!(multi.tenant("globex").unwrap().generation(), 1);
    // Reload daemon A the same way, then both gen-2 surfaces must agree.
    assert_eq!(single_a.reload().unwrap(), (2, true));
    assert_identical(&acme, single_a_addr, g_a.num_nodes() as u32);
    assert_identical(&globex, single_b_addr, g_b.num_nodes() as u32);

    stop.store(true, Ordering::Relaxed);
    let rounds = hammer.join().expect("globex hammer panicked");
    assert!(rounds >= 30);

    // Per-tenant accounting: the admin view carries both ledgers, and
    // globex's error counters are untouched by acme's bad day.
    let by_id: std::collections::HashMap<String, ServeMetrics> =
        multi.tenant_metrics().into_iter().collect();
    assert_eq!(by_id.len(), 2);
    assert!(by_id["globex"].queries_answered >= rounds);
    assert_eq!(by_id["globex"].quota_shed, 0);
    assert_eq!(by_id["acme"].reloads, 1);
    assert_eq!(by_id["globex"].reloads, 0);

    multi.shutdown();
    single_a.shutdown();
    single_b.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Chaos riding the reload path: the streamed generations (deltas, a
/// compaction, chain GC) are produced by a resident cluster running
/// under an injected stall/loss fault schedule, and a killed machine's
/// shard is speculatively rebuilt before persisting one more. Hammering
/// clients must see ZERO errors and every answer byte-identical to the
/// folded chain its pinned generation names.
#[test]
fn reload_and_gc_survive_fault_schedule() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let base = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 37)
    };
    let root = temp_dir("chaos-reload");
    let net = NetworkModel::shared_memory();
    let request = rr_snapshot_request(&g, &base);

    type References =
        std::sync::RwLock<std::collections::HashMap<u64, Arc<(u64, Vec<CoverageShard>)>>>;
    let references: Arc<References> = Arc::default();
    let load_latest_reference = |expected: u64| {
        let (id, snap) = load_latest_snapshot(&root, &request).expect("load folded chain");
        assert_eq!(id, expected, "newest committed generation");
        Arc::new((snap.theta, snapshot_shards(snap)))
    };

    let (first, _) = diimm_sample_generation(&g, &base, 2, net, ExecMode::Sequential, &root, 10)
        .expect("sample generation 1");
    assert_eq!(first, 1);
    references
        .write()
        .unwrap()
        .insert(1, load_latest_reference(1));

    let (generation, snapshot) = load_latest_rr_snapshot(&g, &base, &root).unwrap();
    let server = dim_serve::Server::start_with(
        "127.0.0.1:0",
        Sketch::from_snapshot(g.num_nodes(), snapshot),
        ServeOptions {
            workers: 8,
            generation,
            reload: Some(ReloadSource {
                root: root.clone(),
                request: request.clone(),
                num_nodes: g.num_nodes(),
            }),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let n = g.num_nodes() as u32;
    const HAMMERS: u64 = 4;
    let workers: Vec<_> = (0..HAMMERS)
        .map(|t| {
            let references = Arc::clone(&references);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                let mut seen = std::collections::BTreeSet::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) || round < 20 {
                    let seeds = pseudo_ids(t ^ 0xC4A0, round, n, (round % 7) as usize);
                    let replies = client
                        .batch(&[
                            QueryRequest::Stats,
                            QueryRequest::Spread {
                                seeds: seeds.clone(),
                            },
                        ])
                        .expect("query while chaos runs the producer");
                    let [QueryResponse::Stats(stats), QueryResponse::Spread { covered, theta, .. }] =
                        &replies[..]
                    else {
                        panic!("thread {t} round {round}: unexpected replies {replies:?}");
                    };
                    seen.insert(stats.generation);
                    let reference = references
                        .read()
                        .unwrap()
                        .get(&stats.generation)
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!("server reported unknown generation {}", stats.generation)
                        });
                    assert_eq!(*theta, reference.0, "theta must match the pinned generation");
                    assert_eq!(
                        *covered,
                        dim_coverage::seed_set_coverage(&reference.1, &seeds),
                        "thread {t} round {round} generation {}: {seeds:?}",
                        stats.generation
                    );
                    round += 1;
                }
                seen
            })
        })
        .collect();

    // Stream deltas, a compaction, and a chain GC — with a stall/loss
    // fault schedule armed on the resident cluster the whole time. The
    // link layer absorbs every fault (retries within budget), so commits
    // stay byte-identical; the injector's event log proves chaos fired.
    let mut session =
        StreamSession::open(&g, &base, &root, net, ExecMode::Sequential).expect("open session");
    session.set_faults(Some(FaultInjector::new(
        FaultPlan {
            chaos_seed: 0xD1CE,
            link_faults: (0..2)
                .map(|m| LinkFault {
                    machine: m,
                    extra_latency_us: 300,
                    jitter_us: 120,
                    loss_prob_ppm: 250_000,
                    loss_retry_us: 800,
                    stall_prob_ppm: 200_000,
                    stall_ms: 2,
                    ..LinkFault::default()
                })
                .collect(),
            ..FaultPlan::default()
        },
        2,
    )));
    let mut edges = g.edges();
    let (u1, v1, _) = edges.next().expect("graph has edges");
    let (u2, v2, _) = edges.next().expect("graph has two edges");
    let mut admin = QueryClient::connect(addr).expect("admin connect");
    let steps: Vec<(Option<Vec<EdgeOp>>, u64)> = vec![
        (
            Some(vec![
                EdgeOp::Delete { u: u1, v: v1 },
                EdgeOp::Insert {
                    u: (u1 + 1) % n,
                    v: (u1 + 2) % n,
                    p: 0.4,
                },
            ]),
            2,
        ),
        // Generation 3: the chain folded into a standalone base.
        (None, 3),
        // Delta generation 4; keep = 2 GCs the pre-compaction chain out
        // from under the serving daemon mid-flight.
        (Some(vec![EdgeOp::Reweight { u: u2, v: v2, p: 0.8 }]), 4),
    ];
    for (ops, expected) in steps {
        let committed = match ops {
            Some(ops) => {
                let keep = if expected == 4 { 2 } else { 10 };
                let applied = session.apply(ops, true, keep).expect("apply under chaos");
                assert!(applied.sets_repaired > 0, "generation {expected} repaired nothing");
                applied.generation.expect("persisted apply commits")
            }
            None => session
                .compact(10)
                .expect("compact under chaos")
                .expect("chain has batches to fold"),
        };
        assert_eq!(committed, expected);
        references
            .write()
            .unwrap()
            .insert(expected, load_latest_reference(expected));
        let (gen, changed) = admin.reload().expect("wire reload");
        assert_eq!((gen, changed), (expected, true));
        thread::sleep(std::time::Duration::from_millis(40));
    }
    let events = session
        .fault_injector()
        .expect("injector stays armed")
        .events();
    assert!(!events.is_empty(), "no fault events fired during streaming");
    drop(session);

    // Harder chaos: a full sampling run for generation 5 loses a machine
    // outright (killed link), recovers by speculative shard rebuild, and
    // persists the recovered shards — which must be byte-identical to a
    // fault-free run of the same config, proven by the seed set.
    let cfg5 = ImConfig {
        seed: base.seed + 100,
        ..base
    };
    let fault_free = dim_core::diimm::diimm(&g, &cfg5, 2, net, ExecMode::Sequential).unwrap();
    let cluster = SimCluster::new(
        (0..2usize)
            .map(|i| dim_core::diimm::DiimmWorker::new(&g, &cfg5, i))
            .collect(),
        net,
        ExecMode::Sequential,
    )
    .with_faults(FaultInjector::new(FaultPlan::kill_machine(1, 1), 2));
    let mut recovering = RecoveringCluster::new(
        cluster,
        &g,
        &cfg5,
        RecoveryPolicy {
            min_survivors: 1,
            ..RecoveryPolicy::resample()
        },
    );
    let result = dim_core::diimm::diimm_on(&mut recovering, &g, &cfg5, true)
        .expect("recovery absorbs the kill");
    assert_eq!(result.seeds, fault_free.seeds, "rebuilt shard diverged");
    let degraded = recovering.degraded_outcome().expect("kill not recorded");
    assert_eq!(degraded.lost, vec![1]);
    assert!(degraded.rebuilt_sets > 0);
    let (id, dir) = begin_generation(&root).unwrap();
    assert_eq!(id, 5);
    persist_rr_shards(&mut recovering, &dir, &g, &cfg5, result.num_rr_sets as u64)
        .expect("persist recovered shards");
    commit_generation(&dir, id).unwrap();
    references.write().unwrap().insert(5, load_latest_reference(5));
    let (gen, changed) = admin.reload().expect("reload into recovered generation");
    assert_eq!((gen, changed), (5, true));

    stop.store(true, Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for w in workers {
        observed.extend(w.join().expect("hammer thread panicked"));
    }
    assert!(
        observed.contains(&1) && observed.contains(&5),
        "hammering threads never straddled the swaps: observed {observed:?}"
    );
    assert_eq!(server.generation(), 5);
    assert_eq!(server.metrics().reloads, 4);
    server.shutdown();
    // Chain GC ran under chaos: only the compacted base, its delta, and
    // the recovered generation survive.
    let left: Vec<u64> = list_generations(&root)
        .unwrap()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(left, vec![3, 4, 5]);
    std::fs::remove_dir_all(&root).ok();
}

/// The unconstrained top-k answer served over the wire IS the persisted
/// run's seed set — sample once, query forever.
#[test]
fn served_topk_equals_sampled_run() {
    let g = DatasetProfile::Facebook.generate(0.08, 9);
    let config = ImConfig {
        k: 5,
        ..ImConfig::paper_defaults(&g, 0.5, 33)
    };
    let dir = temp_dir("topk");
    let sampled = diimm_sample(
        &g,
        &config,
        2,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();
    let sketch = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let server = dim_serve::Server::start("127.0.0.1:0", sketch).unwrap();
    let mut client = QueryClient::connect(server.local_addr()).unwrap();

    let top = client.top_k(config.k as u32, &[], &[]).unwrap();
    assert_eq!(top.seeds, sampled.seeds);
    assert_eq!(top.marginals, sampled.marginals);
    assert_eq!(top.covered, sampled.coverage);

    // And the serving stats describe the sketch exactly.
    let stats = client.stats().unwrap();
    assert_eq!(stats.theta as usize, sampled.num_rr_sets);
    assert_eq!(stats.total_rr_size as usize, sampled.total_rr_size);
    assert_eq!(stats.shard_count, 2);
    assert_eq!(stats.num_nodes as usize, g.num_nodes());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
