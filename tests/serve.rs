//! Concurrency and correctness of the dim-serve query service: many
//! client threads hammer one server over loopback TCP, and every single
//! reply must equal the direct in-process [`CoverageShard`] computation
//! on an identical sketch. Shutdown must be clean — all threads joined,
//! no socket left accepting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use dim::prelude::*;
use dim_serve::QueryClient;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dim-serve-itest-{}-{tag}-{n}", std::process::id()))
}

/// A tiny deterministic id stream so every thread queries different seed
/// sets without sharing state.
fn pseudo_ids(stream: u64, round: u64, n: u32, len: usize) -> Vec<u32> {
    let mut x = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as u32) % n
        })
        .collect()
}

/// Samples a real DiIMM sketch, serves it, and checks every concurrent
/// reply — spreads and constrained top-k — against direct evaluation.
#[test]
fn concurrent_queries_match_direct_computation() {
    let g = DatasetProfile::Facebook.generate(0.08, 5);
    let config = ImConfig {
        k: 4,
        ..ImConfig::paper_defaults(&g, 0.5, 21)
    };
    let dir = temp_dir("concurrent");
    diimm_sample(
        &g,
        &config,
        3,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();

    // Two independent loads: one becomes the served sketch, the other the
    // reference the clients check every reply against.
    let served = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let reference = Arc::new(snapshot_shards(load_rr_snapshot(&g, &config, &dir).unwrap()));
    let theta = served.theta();
    let n = g.num_nodes();

    let server = dim_serve::Server::start("127.0.0.1:0", served).unwrap();
    let addr = server.local_addr();

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 20;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    let seeds = pseudo_ids(t, round, n as u32, (round % 7) as usize);
                    let (covered, spread) = client.spread(&seeds).expect("spread query");
                    let expected = dim_coverage::seed_set_coverage(&reference, &seeds);
                    assert_eq!(covered, expected, "thread {t} round {round}: {seeds:?}");
                    let direct = n as f64 * expected as f64 / theta as f64;
                    assert!((spread - direct).abs() < 1e-9);
                    if round % 5 == 0 {
                        let exclude = pseudo_ids(t ^ 0xFF, round, n as u32, 2);
                        let top = client.top_k(3, &[], &exclude).expect("top-k query");
                        let direct =
                            dim_coverage::constrained_greedy(&reference, 3, &[], &exclude);
                        assert_eq!(top.seeds, direct.seeds, "thread {t} round {round}");
                        assert_eq!(top.marginals, direct.marginals);
                        assert_eq!(top.covered, direct.covered);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let expected_queries = THREADS * (ROUNDS + ROUNDS.div_ceil(5));
    assert_eq!(server.queries_answered(), expected_queries);
    server.shutdown();

    // Clean shutdown: the listener is gone, so either the connect is
    // refused or the dead connection errors on first use.
    match QueryClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(client.spread(&[0]).is_err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The unconstrained top-k answer served over the wire IS the persisted
/// run's seed set — sample once, query forever.
#[test]
fn served_topk_equals_sampled_run() {
    let g = DatasetProfile::Facebook.generate(0.08, 9);
    let config = ImConfig {
        k: 5,
        ..ImConfig::paper_defaults(&g, 0.5, 33)
    };
    let dir = temp_dir("topk");
    let sampled = diimm_sample(
        &g,
        &config,
        2,
        NetworkModel::shared_memory(),
        ExecMode::Sequential,
        &dir,
    )
    .unwrap();
    let sketch = Sketch::from_snapshot(
        g.num_nodes(),
        load_rr_snapshot(&g, &config, &dir).unwrap(),
    );
    let server = dim_serve::Server::start("127.0.0.1:0", sketch).unwrap();
    let mut client = QueryClient::connect(server.local_addr()).unwrap();

    let top = client.top_k(config.k as u32, &[], &[]).unwrap();
    assert_eq!(top.seeds, sampled.seeds);
    assert_eq!(top.marginals, sampled.marginals);
    assert_eq!(top.covered, sampled.coverage);

    // And the serving stats describe the sketch exactly.
    let stats = client.stats().unwrap();
    assert_eq!(stats.theta as usize, sampled.num_rr_sets);
    assert_eq!(stats.total_rr_size as usize, sampled.total_rr_size);
    assert_eq!(stats.shard_count, 2);
    assert_eq!(stats.num_nodes as usize, g.num_nodes());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
