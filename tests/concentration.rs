//! Statistical integration tests for the paper's concentration results.

use dim::prelude::*;
use dim_diffusion::rr::{sample_batch, AnySampler};
use dim_diffusion::RrStore;
use rand::SeedableRng;
use rand_pcg::Pcg64;

/// Corollary 1: the total size of T RR sets concentrates around T·EPS —
/// across many independent batches, the batch totals stay within ±20% of
/// the mean (far looser than the martingale bound, so this cannot flake).
#[test]
fn corollary1_rr_size_concentration() {
    let g = DatasetProfile::Facebook.generate(0.2, 12);
    let sampler = AnySampler::for_model(&g, DiffusionModel::IndependentCascade);
    let batch = 2_000;
    let batches = 24;
    let totals: Vec<usize> = (0..batches)
        .map(|i| {
            let mut store = RrStore::new();
            let mut rng = Pcg64::seed_from_u64(1000 + i);
            sample_batch(&sampler, batch, &mut rng, &mut store);
            store.total_size()
        })
        .collect();
    let mean = totals.iter().sum::<usize>() as f64 / batches as f64;
    for (i, &t) in totals.iter().enumerate() {
        let rel = (t as f64 - mean).abs() / mean;
        assert!(rel < 0.2, "batch {i}: total {t} vs mean {mean} (rel {rel})");
    }
}

/// The same concentration justifies the balanced-workload claim: the
/// slowest of ℓ machines generating θ/ℓ RR sets each does at most ~15% more
/// node-work than the average at realistic batch sizes.
#[test]
fn workload_balanced_across_machines() {
    let g = DatasetProfile::GooglePlus.generate(0.02, 4);
    let sampler = AnySampler::for_model(&g, DiffusionModel::IndependentCascade);
    let machines = 8;
    let per_machine = 3_000;
    let sizes: Vec<usize> = (0..machines)
        .map(|i| {
            let mut store = RrStore::new();
            let mut rng = Pcg64::seed_from_u64(stream_seed(9, i));
            sample_batch(&sampler, per_machine, &mut rng, &mut store);
            store.total_size()
        })
        .collect();
    let avg = sizes.iter().sum::<usize>() as f64 / machines as f64;
    let max = *sizes.iter().max().unwrap() as f64;
    assert!(
        max / avg < 1.15,
        "imbalance too high: sizes {sizes:?} (max/avg = {})",
        max / avg
    );
}

/// Lemma 1 at integration scope: the RIS estimator is unbiased for a
/// multi-node seed set on a generated profile graph, validated against
/// forward Monte-Carlo.
#[test]
fn lemma1_multi_node_unbiasedness() {
    let g = DatasetProfile::Facebook.generate(0.1, 44);
    let n = g.num_nodes();
    let seeds: Vec<u32> = vec![0, 5, 11];
    let sampler = AnySampler::for_model(&g, DiffusionModel::IndependentCascade);
    let mut rng = Pcg64::seed_from_u64(2);
    let mut store = RrStore::new();
    let count = 60_000;
    sample_batch(&sampler, count, &mut rng, &mut store);
    let covered = store
        .iter()
        .filter(|rr| rr.iter().any(|v| seeds.contains(v)))
        .count();
    let ris = n as f64 * covered as f64 / count as f64;
    let mc = estimate_spread(
        &g,
        DiffusionModel::IndependentCascade,
        &seeds,
        60_000,
        71,
    );
    let rel = (ris - mc).abs() / mc;
    assert!(rel < 0.05, "RIS {ris} vs MC {mc} (rel {rel})");
}

/// EPS (Lemma 3) via the sampler agrees between the standard BFS sampler
/// and SUBSIM — they draw the same distribution.
#[test]
fn samplers_agree_on_eps() {
    let g = DatasetProfile::LiveJournal.generate(0.001, 3);
    let count = 40_000;
    let eps_of = |sampler: AnySampler| {
        let mut store = RrStore::new();
        let mut rng = Pcg64::seed_from_u64(5);
        sample_batch(&sampler, count, &mut rng, &mut store);
        store.total_size() as f64 / count as f64
    };
    let bfs = eps_of(AnySampler::for_model(
        &g,
        DiffusionModel::IndependentCascade,
    ));
    let subsim = eps_of(AnySampler::subsim(&g));
    let rel = (bfs - subsim).abs() / bfs;
    assert!(rel < 0.05, "BFS EPS {bfs} vs SUBSIM EPS {subsim}");
}
