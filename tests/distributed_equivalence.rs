//! Cross-crate equivalence tests: the distributed algorithms must match
//! their centralized counterparts exactly (the paper's Lemma 2 / Theorem 1
//! machinery), and the incremental traffic optimization must not change
//! any output.

use dim::prelude::*;
use dim_core::diimm::diimm_with_options;
use dim_coverage::greedi::greedi;

/// IMM and DiIMM(ℓ=1) are the same algorithm — identical seeds, θ, sizes.
#[test]
fn imm_is_diimm_with_one_machine() {
    for seed in [1u64, 7, 99] {
        let g = DatasetProfile::Facebook.generate(0.2, seed);
        let config = ImConfig {
            k: 6,
            ..ImConfig::paper_defaults(&g, 0.3, seed)
        };
        let a = imm(&g, &config);
        let b = diimm(&g, &config, 1, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(a.seeds, b.seeds, "seed {seed}");
        assert_eq!(a.num_rr_sets, b.num_rr_sets, "seed {seed}");
        assert_eq!(a.coverage, b.coverage, "seed {seed}");
    }
}

/// The §III-C incremental coverage reporting changes traffic only: seeds,
/// coverage, θ, and spread are bit-identical with and without it.
#[test]
fn incremental_reporting_preserves_output() {
    let g = DatasetProfile::GooglePlus.generate(0.02, 5);
    let config = ImConfig {
        k: 10,
        ..ImConfig::paper_defaults(&g, 0.3, 17)
    };
    for machines in [1, 4, 8] {
        let full = diimm_with_options(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
            false,
        )
        .unwrap();
        let incr = diimm_with_options(
            &g,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
            true,
        )
        .unwrap();
        assert_eq!(full.seeds, incr.seeds, "ℓ = {machines}");
        assert_eq!(full.num_rr_sets, incr.num_rr_sets);
        assert_eq!(full.coverage, incr.coverage);
        assert!(
            incr.metrics.bytes_to_master < full.metrics.bytes_to_master,
            "ℓ = {machines}: incremental {} B should beat full {} B",
            incr.metrics.bytes_to_master,
            full.metrics.bytes_to_master
        );
    }
}

/// NewGreeDi over RIS-derived instances equals centralized greedy for any
/// sharding of the same RR-set collection (not just the synthetic
/// instances covered by unit tests).
#[test]
fn newgreedi_exact_on_ris_instances() {
    use dim_cluster::SimCluster;
    use dim_coverage::greedy::bucket_greedy;
    use dim_coverage::CoverageShard;
    use dim_diffusion::rr::{sample_batch, AnySampler};
    use dim_diffusion::RrStore;
    use rand::SeedableRng;

    let g = DatasetProfile::Facebook.generate(0.1, 8);
    let sampler = AnySampler::for_model(&g, DiffusionModel::IndependentCascade);
    let mut store = RrStore::new();
    let mut rng = rand_pcg::Pcg64::seed_from_u64(3);
    sample_batch(&sampler, 4000, &mut rng, &mut store);

    let mut central = CoverageShard::from_records(g.num_nodes(), store.iter());
    let reference = bucket_greedy(&mut central, 12);

    for machines in [2usize, 5, 16] {
        let mut shards: Vec<CoverageShard> = (0..machines)
            .map(|_| CoverageShard::new(g.num_nodes()))
            .collect();
        for (i, rr) in store.iter().enumerate() {
            shards[i % machines].push_element(rr);
        }
        let mut cluster = SimCluster::new(
            shards,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let r = newgreedi(&mut cluster, 12).unwrap();
        assert_eq!(r.seeds, reference.seeds, "ℓ = {machines}");
        assert_eq!(r.covered, reference.covered, "ℓ = {machines}");
    }
}

/// GreeDi never exceeds NewGreeDi's coverage (NewGreeDi is the exact
/// greedy; GreeDi is its core-set approximation) on the Fig. 10 workload.
#[test]
fn greedi_bounded_by_newgreedi_on_neighborhoods() {
    use dim_cluster::SimCluster;

    let g = DatasetProfile::Facebook.generate(0.2, 4);
    let problem = CoverageProblem::from_graph_neighborhoods(&g);
    for machines in [2usize, 8, 32] {
        let mut ng_cluster = SimCluster::new(
            problem.shard_elements(machines),
            NetworkModel::zero(),
            ExecMode::Sequential,
        );
        let ng = newgreedi(&mut ng_cluster, 20).unwrap();
        let mut gd_cluster = SimCluster::new(
            problem.shard_sets(machines, Some(7)),
            NetworkModel::zero(),
            ExecMode::Sequential,
        );
        let gd = greedi(&mut gd_cluster, 20, 20);
        assert!(
            gd.covered <= ng.covered,
            "ℓ = {machines}: GreeDi {} > NewGreeDi {}",
            gd.covered,
            ng.covered
        );
        // And it is never catastrophically bad on this workload either.
        assert!(gd.covered as f64 >= 0.5 * ng.covered as f64);
    }
}

/// Per-machine RNG streams: permuting machine count changes which machine
/// draws what, but a fixed (seed, ℓ) is exactly reproducible.
#[test]
fn reproducibility_fixed_seed_and_machines() {
    let g = DatasetProfile::LiveJournal.generate(0.002, 6);
    let config = ImConfig {
        k: 6,
        ..ImConfig::paper_defaults(&g, 0.3, 77)
    };
    let a = diimm(&g, &config, 8, NetworkModel::cluster_1gbps(), ExecMode::Sequential).unwrap();
    let b = diimm(&g, &config, 8, NetworkModel::cluster_1gbps(), ExecMode::Sequential).unwrap();
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.metrics.bytes_to_master, b.metrics.bytes_to_master);
    assert_eq!(a.metrics.messages, b.metrics.messages);
}
