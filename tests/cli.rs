//! End-to-end tests of the `dim` CLI binary.

use std::process::Command;

fn dim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dim"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = dim().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dim-cli-{}-{name}", std::process::id()))
}

#[test]
fn help_lists_commands() {
    let (ok, _, err) = run(&["help"]);
    assert!(ok);
    for cmd in ["stats", "im", "coverage", "simulate", "generate"] {
        assert!(err.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_fails_with_usage() {
    let out = dim().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn stats_on_profile() {
    let (ok, out, _) = run(&["stats", "--graph", "profile:facebook:0.05"]);
    assert!(ok);
    assert!(out.contains("n="));
    assert!(out.contains("LT-compatible: yes"));
}

#[test]
fn generate_then_stats_then_im_roundtrip() {
    let path = temp_path("roundtrip.txt");
    let path_s = path.to_str().unwrap();
    let (ok, out, err) =
        run(&["generate", "--profile", "facebook:0.05", "--out", path_s, "--seed", "3"]);
    assert!(ok, "generate failed: {err}");
    assert!(out.contains("wrote"));

    let (ok, out, _) = run(&["stats", "--graph", path_s]);
    assert!(ok);
    assert!(out.contains("n=202"), "unexpected stats: {out}");

    let (ok, out, err) = run(&[
        "im", "--graph", path_s, "--k", "3", "--machines", "2", "--epsilon", "0.4",
        "--evaluate", "--sims", "2000",
    ]);
    assert!(ok, "im failed: {err}");
    assert!(out.contains("seeds:"));
    assert!(out.contains("estimated spread"));
    assert!(out.contains("simulated spread"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_reports_spread() {
    let (ok, out, _) = run(&[
        "simulate", "--graph", "profile:facebook:0.05", "--seeds", "0,1", "--sims", "1000",
    ]);
    assert!(ok);
    assert!(out.contains("σ("));
}

#[test]
fn simulate_rejects_out_of_range_seed() {
    let (ok, _, err) = run(&[
        "simulate", "--graph", "profile:facebook:0.05", "--seeds", "999999",
    ]);
    assert!(!ok);
    assert!(err.contains("out of range"));
}

#[test]
fn coverage_subcommand() {
    let (ok, out, _) = run(&[
        "coverage", "--graph", "profile:facebook:0.05", "--k", "5", "--machines", "4",
    ]);
    assert!(ok);
    assert!(out.contains("covered"));
}

#[test]
fn im_algorithms_all_run() {
    for algo in ["imm", "diimm", "opim", "subsim"] {
        let (ok, out, err) = run(&[
            "im", "--graph", "profile:facebook:0.05", "--k", "2", "--epsilon", "0.5",
            "--algorithm", algo,
        ]);
        assert!(ok, "{algo} failed: {err}");
        assert!(out.contains("seeds:"), "{algo}: {out}");
    }
}

#[test]
fn im_breakdown_prints_phase_rows() {
    let (ok, out, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--k", "2", "--epsilon", "0.5",
        "--machines", "2", "--breakdown",
    ]);
    assert!(ok, "im --breakdown failed: {err}");
    assert!(out.contains("phase"), "missing breakdown header: {out}");
    assert!(out.contains("measured (s)"), "missing measured column: {out}");
    for label in ["rr-sampling", "coverage-upload", "seed-select"] {
        assert!(out.contains(label), "missing {label} row: {out}");
    }
}

#[test]
fn coverage_breakdown_prints_phase_rows() {
    let (ok, out, _) = run(&[
        "coverage", "--graph", "profile:facebook:0.05", "--k", "3", "--machines", "2",
        "--breakdown",
    ]);
    assert!(ok);
    assert!(out.contains("coverage-upload"), "{out}");
}

#[test]
fn subsim_rejects_lt() {
    let (ok, _, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--algorithm", "subsim", "--model", "lt",
    ]);
    assert!(!ok);
    assert!(err.contains("IC model only"));
}

#[test]
fn bad_flag_value_reported() {
    let (ok, _, err) = run(&["im", "--graph", "profile:facebook:0.05", "--epsilon", "huge"]);
    assert!(!ok);
    assert!(err.contains("bad --epsilon"));
}

#[test]
fn uniform_weight_model_flag() {
    let (ok, out, _) = run(&[
        "stats", "--graph", "profile:facebook:0.05", "--weights", "uniform:0.9",
    ]);
    assert!(ok);
    // With Σ in-probs = 0.9·indeg > 1 on multi-in-degree nodes, the LT
    // constraint fails — the stats command surfaces that.
    assert!(out.contains("LT-compatible: no"), "{out}");
}

#[test]
fn sample_then_load_rr_is_byte_identical_across_processes() {
    let dir = temp_path("sketch-roundtrip");
    let dir_s = dir.to_str().unwrap();
    let (ok, out, err) = run(&[
        "sample", "--graph", "profile:facebook:0.05", "--k", "3", "--machines", "2",
        "--epsilon", "0.5", "--seed", "19", "--out", dir_s,
    ]);
    assert!(ok, "sample failed: {err}");
    let sampled_seeds = out
        .lines()
        .find(|l| l.starts_with("seeds:"))
        .expect("sample prints seeds")
        .to_owned();
    assert!(out.contains("sketch: 2 shard(s)"), "{out}");

    // A *separate process* reloads the sketch and must re-derive the very
    // same seed set — the snapshot carries everything the selection needs.
    let (ok, out, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--k", "3", "--epsilon", "0.5",
        "--seed", "19", "--load-rr", dir_s,
    ]);
    assert!(ok, "im --load-rr failed: {err}");
    let loaded_seeds = out
        .lines()
        .find(|l| l.starts_with("seeds:"))
        .expect("im prints seeds")
        .to_owned();
    assert_eq!(sampled_seeds, loaded_seeds);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_rr_mismatch_and_corruption_are_typed_errors() {
    let dir = temp_path("sketch-negative");
    let dir_s = dir.to_str().unwrap();
    let (ok, _, err) = run(&[
        "sample", "--graph", "profile:facebook:0.05", "--k", "2", "--machines", "2",
        "--seed", "23", "--out", dir_s,
    ]);
    assert!(ok, "sample failed: {err}");

    // Wrong graph: the fingerprint check refuses to select on someone
    // else's RR sets.
    let (ok, _, err) = run(&[
        "im", "--graph", "profile:facebook:0.08", "--k", "2", "--seed", "23",
        "--load-rr", dir_s,
    ]);
    assert!(!ok);
    assert!(err.contains("fingerprint mismatch"), "{err}");

    // Truncated shard: a typed corruption error, not a panic.
    let victim = dir.join("shard-1-of-2.rrs");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let (ok, _, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--k", "2", "--seed", "23",
        "--load-rr", dir_s,
    ]);
    assert!(!ok);
    assert!(err.contains("corrupt snapshot shard"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_query_roundtrip() {
    use std::io::BufRead;

    let dir = temp_path("sketch-serve");
    let dir_s = dir.to_str().unwrap();
    let (ok, _, err) = run(&[
        "sample", "--graph", "profile:facebook:0.05", "--k", "3", "--machines", "2",
        "--seed", "29", "--out", dir_s,
    ]);
    assert!(ok, "sample failed: {err}");

    // Serve on an ephemeral port; the daemon prints its bound address and
    // exits cleanly after --max-queries.
    let mut server = dim()
        .args([
            "serve", "--graph", "profile:facebook:0.05", "--seed", "29", "--store", dir_s,
            "--addr", "127.0.0.1:0", "--max-queries", "3",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = server.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").unwrap();
    assert!(banner.starts_with("dim-serve: listening on "), "{banner}");
    let addr = banner["dim-serve: listening on ".len()..]
        .split_whitespace()
        .next()
        .unwrap()
        .to_owned();

    let (ok, out, err) = run(&["query", "--addr", &addr, "--stats"]);
    assert!(ok, "query --stats failed: {err}");
    assert!(out.contains("RR sets in 2 shard(s)"), "{out}");

    let (ok, out, err) = run(&["query", "--addr", &addr, "--seeds", "0,1"]);
    assert!(ok, "query --seeds failed: {err}");
    assert!(out.contains("estimated spread"), "{out}");

    let (ok, out, err) = run(&["query", "--addr", &addr, "--k", "2"]);
    assert!(ok, "query --k failed: {err}");
    assert!(out.contains("seeds:"), "{out}");
    assert!(out.contains("marginals:"), "{out}");

    let status = server.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        rest.iter().any(|l| l.contains("shut down after 3 queries")),
        "{rest:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
