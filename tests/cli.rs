//! End-to-end tests of the `dim` CLI binary.

use std::process::Command;

fn dim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dim"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = dim().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dim-cli-{}-{name}", std::process::id()))
}

#[test]
fn help_lists_commands() {
    let (ok, _, err) = run(&["help"]);
    assert!(ok);
    for cmd in ["stats", "im", "coverage", "simulate", "generate"] {
        assert!(err.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_fails_with_usage() {
    let out = dim().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn stats_on_profile() {
    let (ok, out, _) = run(&["stats", "--graph", "profile:facebook:0.05"]);
    assert!(ok);
    assert!(out.contains("n="));
    assert!(out.contains("LT-compatible: yes"));
}

#[test]
fn generate_then_stats_then_im_roundtrip() {
    let path = temp_path("roundtrip.txt");
    let path_s = path.to_str().unwrap();
    let (ok, out, err) =
        run(&["generate", "--profile", "facebook:0.05", "--out", path_s, "--seed", "3"]);
    assert!(ok, "generate failed: {err}");
    assert!(out.contains("wrote"));

    let (ok, out, _) = run(&["stats", "--graph", path_s]);
    assert!(ok);
    assert!(out.contains("n=202"), "unexpected stats: {out}");

    let (ok, out, err) = run(&[
        "im", "--graph", path_s, "--k", "3", "--machines", "2", "--epsilon", "0.4",
        "--evaluate", "--sims", "2000",
    ]);
    assert!(ok, "im failed: {err}");
    assert!(out.contains("seeds:"));
    assert!(out.contains("estimated spread"));
    assert!(out.contains("simulated spread"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_reports_spread() {
    let (ok, out, _) = run(&[
        "simulate", "--graph", "profile:facebook:0.05", "--seeds", "0,1", "--sims", "1000",
    ]);
    assert!(ok);
    assert!(out.contains("σ("));
}

#[test]
fn simulate_rejects_out_of_range_seed() {
    let (ok, _, err) = run(&[
        "simulate", "--graph", "profile:facebook:0.05", "--seeds", "999999",
    ]);
    assert!(!ok);
    assert!(err.contains("out of range"));
}

#[test]
fn coverage_subcommand() {
    let (ok, out, _) = run(&[
        "coverage", "--graph", "profile:facebook:0.05", "--k", "5", "--machines", "4",
    ]);
    assert!(ok);
    assert!(out.contains("covered"));
}

#[test]
fn im_algorithms_all_run() {
    for algo in ["imm", "diimm", "opim", "subsim"] {
        let (ok, out, err) = run(&[
            "im", "--graph", "profile:facebook:0.05", "--k", "2", "--epsilon", "0.5",
            "--algorithm", algo,
        ]);
        assert!(ok, "{algo} failed: {err}");
        assert!(out.contains("seeds:"), "{algo}: {out}");
    }
}

#[test]
fn im_breakdown_prints_phase_rows() {
    let (ok, out, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--k", "2", "--epsilon", "0.5",
        "--machines", "2", "--breakdown",
    ]);
    assert!(ok, "im --breakdown failed: {err}");
    assert!(out.contains("phase"), "missing breakdown header: {out}");
    assert!(out.contains("measured (s)"), "missing measured column: {out}");
    for label in ["rr-sampling", "coverage-upload", "seed-select"] {
        assert!(out.contains(label), "missing {label} row: {out}");
    }
}

#[test]
fn coverage_breakdown_prints_phase_rows() {
    let (ok, out, _) = run(&[
        "coverage", "--graph", "profile:facebook:0.05", "--k", "3", "--machines", "2",
        "--breakdown",
    ]);
    assert!(ok);
    assert!(out.contains("coverage-upload"), "{out}");
}

#[test]
fn subsim_rejects_lt() {
    let (ok, _, err) = run(&[
        "im", "--graph", "profile:facebook:0.05", "--algorithm", "subsim", "--model", "lt",
    ]);
    assert!(!ok);
    assert!(err.contains("IC model only"));
}

#[test]
fn bad_flag_value_reported() {
    let (ok, _, err) = run(&["im", "--graph", "profile:facebook:0.05", "--epsilon", "huge"]);
    assert!(!ok);
    assert!(err.contains("bad --epsilon"));
}

#[test]
fn uniform_weight_model_flag() {
    let (ok, out, _) = run(&[
        "stats", "--graph", "profile:facebook:0.05", "--weights", "uniform:0.9",
    ]);
    assert!(ok);
    // With Σ in-probs = 0.9·indeg > 1 on multi-in-degree nodes, the LT
    // constraint fails — the stats command surfaces that.
    assert!(out.contains("LT-compatible: no"), "{out}");
}
