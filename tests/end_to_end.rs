//! End-to-end integration tests: the full DiIMM pipeline against ground
//! truth, across machine counts, models, and samplers.

use dim::prelude::*;

fn small_config(k: usize, epsilon: f64, seed: u64, model: DiffusionModel) -> ImConfig {
    ImConfig {
        k,
        epsilon,
        delta: 0.1,
        seed,
        sampler: SamplerKind::Standard(model),
    }
}

/// Theorem 1 on a brute-forceable graph: DiIMM's seed set achieves
/// (1 − 1/e − ε)·OPT true spread, for every machine count tried.
#[test]
fn diimm_guarantee_ic_all_machine_counts() {
    let mut b = GraphBuilder::new(9);
    for (u, v, p) in [
        (0u32, 1u32, 0.9f32),
        (0, 2, 0.7),
        (1, 3, 0.5),
        (2, 3, 0.4),
        (4, 5, 0.8),
        (4, 6, 0.6),
        (7, 8, 0.9),
    ] {
        b.add_weighted_edge(u, v, p);
    }
    let g = b.build(WeightModel::WeightedCascade);
    let model = DiffusionModel::IndependentCascade;
    let (_, opt) = exact_opt(&g, model, 3);
    let bound = (1.0 - (-1.0f64).exp() - 0.3) * opt;
    for machines in [1, 2, 4, 7] {
        let r = diimm(
            &g,
            &small_config(3, 0.3, 77, model),
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        let achieved = exact_spread(&g, model, &r.seeds);
        assert!(
            achieved >= bound,
            "ℓ = {machines}: σ(S) = {achieved} < {bound} (OPT = {opt})"
        );
    }
}

/// Same guarantee under the LT model.
#[test]
fn diimm_guarantee_lt() {
    let mut b = GraphBuilder::new(8);
    for (u, v) in [(0u32, 1u32), (0, 2), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7)] {
        b.add_edge(u, v);
    }
    let g = b.build(WeightModel::WeightedCascade);
    let model = DiffusionModel::LinearThreshold;
    let (_, opt) = exact_opt(&g, model, 2);
    let bound = (1.0 - (-1.0f64).exp() - 0.3) * opt;
    for machines in [1, 3, 5] {
        let r = diimm(
            &g,
            &small_config(2, 0.3, 13, model),
            machines,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        let achieved = exact_spread(&g, model, &r.seeds);
        assert!(achieved >= bound, "ℓ = {machines}: {achieved} < {bound}");
    }
}

/// The RIS spread estimate agrees with forward Monte-Carlo simulation
/// within the configured ε, end-to-end on a realistic profile graph.
#[test]
fn ris_estimate_matches_forward_simulation() {
    let g = DatasetProfile::Facebook.generate(0.25, 3);
    let config = ImConfig {
        k: 10,
        ..ImConfig::paper_defaults(&g, 0.2, 5)
    };
    let r = diimm(&g, &config, 4, NetworkModel::shared_memory(), ExecMode::Sequential).unwrap();
    let mc = estimate_spread(
        &g,
        DiffusionModel::IndependentCascade,
        &r.seeds,
        30_000,
        123,
    );
    let rel = (r.est_spread - mc).abs() / mc;
    assert!(
        rel < config.epsilon,
        "RIS {} vs MC {mc} (rel {rel})",
        r.est_spread
    );
}

/// Seed quality is invariant to the machine count: different ℓ draw
/// different RR sets, but the estimated spreads of the returned seed sets
/// agree within the approximation band.
#[test]
fn quality_invariant_to_machine_count() {
    let g = DatasetProfile::Facebook.generate(0.25, 9);
    let config = ImConfig {
        k: 8,
        ..ImConfig::paper_defaults(&g, 0.2, 21)
    };
    let spreads: Vec<f64> = [1usize, 2, 8, 16]
        .iter()
        .map(|&l| {
            diimm(&g, &config, l, NetworkModel::zero(), ExecMode::Sequential)
                .unwrap()
                .est_spread
        })
        .collect();
    let max = spreads.iter().cloned().fold(f64::MIN, f64::max);
    let min = spreads.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.15,
        "spreads vary too much across ℓ: {spreads:?}"
    );
}

/// SUBSIM sampling plugged into the full distributed pipeline returns seeds
/// of the same quality as the standard sampler (Fig. 7's premise).
#[test]
fn distributed_subsim_equivalent_quality() {
    let g = DatasetProfile::Facebook.generate(0.25, 31);
    let base = ImConfig {
        k: 8,
        ..ImConfig::paper_defaults(&g, 0.25, 11)
    };
    let std_r = diimm(&g, &base, 4, NetworkModel::zero(), ExecMode::Sequential).unwrap();
    let sub_cfg = ImConfig {
        sampler: SamplerKind::Subsim,
        ..base
    };
    let sub_r = diimm(&g, &sub_cfg, 4, NetworkModel::zero(), ExecMode::Sequential).unwrap();
    let model = DiffusionModel::IndependentCascade;
    let std_mc = estimate_spread(&g, model, &std_r.seeds, 20_000, 55);
    let sub_mc = estimate_spread(&g, model, &sub_r.seeds, 20_000, 55);
    let rel = (std_mc - sub_mc).abs() / std_mc;
    assert!(rel < 0.1, "standard {std_mc} vs subsim {sub_mc}");
}

/// k larger than the number of useful nodes still terminates and returns
/// at most n seeds.
#[test]
fn k_saturating_terminates() {
    let mut b = GraphBuilder::new(4);
    b.add_weighted_edge(0, 1, 1.0);
    b.add_weighted_edge(0, 2, 1.0);
    b.add_weighted_edge(0, 3, 1.0);
    let g = b.build(WeightModel::WeightedCascade);
    let config = small_config(4, 0.4, 3, DiffusionModel::IndependentCascade);
    let r = diimm(&g, &config, 2, NetworkModel::zero(), ExecMode::Sequential).unwrap();
    assert!(r.seeds.len() <= 4);
    assert!(!r.seeds.is_empty());
    assert!(r.seeds.contains(&0), "the root dominates this graph");
}
