//! Regression guard for per-call scratch allocations on the query hot
//! paths: repeated queries against a frozen sketch must reuse their
//! buffers, not re-allocate them.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The whole
//! guard lives in ONE test function — the counter is process-global, so a
//! second concurrently running test would make the deltas meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dim_coverage::{constrained_greedy, scratch, CoverageShard, SketchCursors};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Deterministic little sketch: 3 shards over a 100-set universe.
fn fixture() -> Vec<CoverageShard> {
    (0..3u32)
        .map(|s| {
            let records: Vec<Vec<u32>> = (0..200u32)
                .map(|e| {
                    (0..(e % 7 + 1))
                        .map(|j| (s * 31 + e * 13 + j * 41) % 100)
                        .collect()
                })
                .collect();
            CoverageShard::from_records(100, records.iter().map(Vec::as_slice))
        })
        .collect()
}

#[test]
fn hot_query_paths_do_not_allocate_in_steady_state() {
    let shards = fixture();

    // The pooled epoch-stamped scratch allocates only while growing.
    scratch::with_flags(100, |f| {
        f.set(3);
    });
    let baseline = allocs();
    for round in 0..10usize {
        scratch::with_flags(100, |f| {
            assert!(!f.is_set(3), "flags leaked across with_flags calls");
            f.set(round);
        });
    }
    assert_eq!(
        allocs(),
        baseline,
        "warm pooled scratch re-allocated on reuse"
    );

    // Batched spread queries through reused cursors: after the first
    // evaluation, resets are epoch bumps and covering allocates nothing.
    let mut cursors = SketchCursors::new(&shards);
    cursors.seed_set_coverage(&[1, 2, 3]);
    let baseline = allocs();
    let mut checksum = 0u64;
    for i in 0..50u32 {
        checksum += cursors.seed_set_coverage(&[i % 100, (i + 7) % 100, (i + 31) % 100]);
    }
    assert!(checksum > 0);
    assert_eq!(
        allocs(),
        baseline,
        "repeated spread queries allocated in steady state"
    );

    // Full constrained selection allocates per call (cursors, counts,
    // selector), but the per-call count must be flat across repeats —
    // growth would mean some scratch escaped the reuse pools.
    let run = || constrained_greedy(&shards, 5, &[], &[2, 17]);
    let first = run();
    let a = allocs();
    let second = run();
    let per_call = allocs() - a;
    let b = allocs();
    let third = run();
    assert_eq!(
        allocs() - b,
        per_call,
        "constrained_greedy per-call allocations grew between runs"
    );
    assert_eq!(first.seeds, second.seeds);
    assert_eq!(second.seeds, third.seeds);
    assert!(!first.seeds.contains(&2) && !first.seeds.contains(&17));
}
